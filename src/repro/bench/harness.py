"""Shared experiment infrastructure.

The experiments all follow one pattern: build a fresh simulation, run
the operation(s) under a PEDAL/naive/raw configuration, and record the
simulated clock plus the real compression artifacts.  This module
provides the single-op drivers and the experiment registry; the
per-figure modules assemble them into the paper's grids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable

from repro.core.api import PedalContext
from repro.core.baseline import NaiveCompressor
from repro.core.designs import CompressionDesign, design as lookup_design
from repro.datasets import Dataset, get_dataset
from repro.dpu.device import make_device
from repro.sim import Environment, TimeBreakdown

__all__ = [
    "ExperimentResult",
    "EXPERIMENTS",
    "run_experiment",
    "register_experiment",
    "generate_payload",
    "run_pedal_roundtrip",
    "run_naive_roundtrip",
    "DEFAULT_ACTUAL_BYTES",
]

# Actual byte budget per dataset for real compression during benches.
# Kept modest: the pure-Python codecs are the real cost; ratios for
# these data classes converge well below this size.
DEFAULT_ACTUAL_BYTES = 96 * 1024


@dataclass
class ExperimentResult:
    """Output of one experiment: printable rows + headline checks."""

    experiment: str
    title: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    headlines: dict[str, float] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        from repro.bench.reporting import format_table

        parts = [format_table(self.rows, self.columns, title=self.title)]
        if self.headlines:
            parts.append("")
            parts.append("Headline factors:")
            for key, value in self.headlines.items():
                parts.append(f"  {key}: {value:.4g}")
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def as_dict(self) -> dict:
        """JSON-ready form (``repro.bench --json``): rows + metadata."""
        return {
            "experiment": self.experiment,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [dict(row) for row in self.rows],
            "headlines": dict(self.headlines),
            "notes": list(self.notes),
        }


@lru_cache(maxsize=64)
def generate_payload(dataset_key: str, actual_bytes: int) -> Any:
    """Cached deterministic payload for (dataset, size)."""
    return get_dataset(dataset_key).generate(actual_bytes)


@dataclass
class RoundtripRecord:
    """Measured compress+decompress pair on one device."""

    compress_breakdown: TimeBreakdown
    decompress_breakdown: TimeBreakdown
    compress_seconds: float
    decompress_seconds: float
    ratio: float
    original_bytes: int
    compressed_bytes: int
    init_seconds: float  # PEDAL_init cost (0 for naive: charged per op)


def _drive(env: Environment, generator) -> Any:
    proc = env.process(generator)
    return env.run(until=proc)


def run_pedal_roundtrip(
    device_kind: str,
    design_spec: "str | CompressionDesign",
    dataset: "str | Dataset",
    sim_bytes: float | None = None,
    actual_bytes: int = DEFAULT_ACTUAL_BYTES,
) -> RoundtripRecord:
    """One PEDAL compress+decompress of a dataset on a fresh device."""
    dsg = lookup_design(design_spec)
    ds = get_dataset(dataset) if isinstance(dataset, str) else dataset
    payload = generate_payload(ds.key, actual_bytes)
    nominal = ds.nominal_bytes if sim_bytes is None else sim_bytes

    env = Environment()
    device = make_device(env, device_kind)
    ctx = PedalContext(device)
    init_breakdown = _drive(env, ctx.init())

    t0 = env.now
    comp = _drive(env, ctx.compress(payload, dsg, nominal))
    t1 = env.now
    dec = _drive(env, ctx.decompress(comp.message, dsg.placement, nominal))
    t2 = env.now
    return RoundtripRecord(
        compress_breakdown=comp.breakdown,
        decompress_breakdown=dec.breakdown,
        compress_seconds=t1 - t0,
        decompress_seconds=t2 - t1,
        ratio=comp.ratio,
        original_bytes=comp.original_bytes,
        compressed_bytes=comp.compressed_bytes,
        init_seconds=init_breakdown.total(),
    )


def run_naive_roundtrip(
    device_kind: str,
    design_spec: "str | CompressionDesign",
    dataset: "str | Dataset",
    sim_bytes: float | None = None,
    actual_bytes: int = DEFAULT_ACTUAL_BYTES,
) -> RoundtripRecord:
    """One naive (non-PEDAL) compress+decompress — the Fig. 7 flow."""
    dsg = lookup_design(design_spec)
    ds = get_dataset(dataset) if isinstance(dataset, str) else dataset
    payload = generate_payload(ds.key, actual_bytes)
    nominal = ds.nominal_bytes if sim_bytes is None else sim_bytes

    env = Environment()
    device = make_device(env, device_kind)
    naive = NaiveCompressor(device)
    t0 = env.now
    comp = _drive(env, naive.compress(payload, dsg, nominal))
    t1 = env.now
    dec = _drive(env, naive.decompress(comp.message, dsg.placement, nominal))
    t2 = env.now
    return RoundtripRecord(
        compress_breakdown=comp.breakdown,
        decompress_breakdown=dec.breakdown,
        compress_seconds=t1 - t0,
        decompress_seconds=t2 - t1,
        ratio=comp.ratio,
        original_bytes=comp.original_bytes,
        compressed_bytes=comp.compressed_bytes,
        init_seconds=0.0,
    )


# ---------------------------------------------------------------------------
# Experiment registry
# ---------------------------------------------------------------------------

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {}


def register_experiment(name: str):
    """Decorator: register an experiment entry point."""

    def wrap(fn: Callable[..., ExperimentResult]):
        EXPERIMENTS[name] = fn
        return fn

    return wrap


def run_experiment(name: str, **kwargs) -> ExperimentResult:
    """Run a registered experiment by id (e.g. ``"fig8"``)."""
    # Import the experiment modules lazily so registration happens on use.
    from repro.bench import experiments  # noqa: F401

    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return fn(**kwargs)
