"""OSU-Micro-Benchmarks-style measurement functions.

The paper instruments its MPI evaluation with the OSU suite (§V-D);
this module provides the three benchmarks it relies on, shaped like
their OSU namesakes but driven by the deterministic simulator (so a
single exchange per size replaces OSU's warmup/averaging loops):

* :func:`osu_latency` — ping-pong one-way latency vs message size;
* :func:`osu_bw` — windowed streaming bandwidth vs message size;
* :func:`osu_bcast` — broadcast completion time vs message size.

Each returns ``(size_bytes, value)`` rows and can render an OSU-style
text report via :func:`format_osu_report`.
"""

from __future__ import annotations

from typing import Callable

from repro.mpi import CommConfig, run_mpi

__all__ = [
    "DEFAULT_SIZES",
    "osu_latency",
    "osu_bw",
    "osu_bcast",
    "format_osu_report",
]

DEFAULT_SIZES = [1 << k for k in range(10, 27, 2)]  # 1 KiB .. 64 MiB
_WINDOW = 64  # osu_bw's default window size


def _payload_for(size: int, payload_fn: "Callable[[int], bytes] | None") -> bytes:
    if payload_fn is not None:
        return payload_fn(size)
    # OSU fills buffers with a constant byte; cap the actual bytes so
    # pure-Python codecs stay fast (the simulated size is what matters).
    return b"\x41" * min(size, 64 * 1024)


def osu_latency(
    device_kind: str = "bf2",
    comm_config: CommConfig | None = None,
    sizes: "list[int] | None" = None,
    payload_fn: "Callable[[int], bytes] | None" = None,
) -> list[tuple[int, float]]:
    """One-way pt2pt latency (seconds) per message size."""
    rows = []
    for size in sizes or DEFAULT_SIZES:
        payload = _payload_for(size, payload_fn)

        def program(ctx, payload=payload, size=size):
            if ctx.rank == 0:
                t0 = ctx.wtime()
                yield from ctx.send(1, payload, sim_bytes=size)
                yield from ctx.recv(source=1)
                return (ctx.wtime() - t0) / 2
            data = yield from ctx.recv(source=0)
            yield from ctx.send(0, data, sim_bytes=size)
            return None

        result = run_mpi(program, 2, device_kind, comm_config)
        rows.append((size, result.returns[0]))
    return rows


def osu_bw(
    device_kind: str = "bf2",
    comm_config: CommConfig | None = None,
    sizes: "list[int] | None" = None,
    window: int = _WINDOW,
    payload_fn: "Callable[[int], bytes] | None" = None,
) -> list[tuple[int, float]]:
    """Streaming bandwidth (bytes/second) per message size.

    Sender posts ``window`` non-blocking sends, receiver drains them and
    acknowledges the window — osu_bw's measurement loop.
    """
    rows = []
    for size in sizes or DEFAULT_SIZES:
        payload = _payload_for(size, payload_fn)

        def program(ctx, payload=payload, size=size):
            if ctx.rank == 0:
                t0 = ctx.wtime()
                requests = [
                    ctx.isend(1, payload, tag=i, sim_bytes=size)
                    for i in range(window)
                ]
                yield from ctx.waitall(requests)
                yield from ctx.recv(source=1, tag=0x5A)  # window ack
                elapsed = ctx.wtime() - t0
                return window * size / elapsed
            for i in range(window):
                yield from ctx.recv(source=0, tag=i)
            yield from ctx.send(0, b"ack", tag=0x5A)
            return None

        result = run_mpi(program, 2, device_kind, comm_config)
        rows.append((size, result.returns[0]))
    return rows


def osu_bcast(
    n_ranks: int = 4,
    device_kind: str = "bf2",
    comm_config: CommConfig | None = None,
    sizes: "list[int] | None" = None,
    algorithm: str = "binomial",
    payload_fn: "Callable[[int], bytes] | None" = None,
) -> list[tuple[int, float]]:
    """Max-over-ranks broadcast time (seconds) per message size."""
    rows = []
    for size in sizes or DEFAULT_SIZES:
        payload = _payload_for(size, payload_fn)

        def program(ctx, payload=payload, size=size):
            data = payload if ctx.rank == 0 else None
            t0 = ctx.wtime()
            yield from ctx.bcast(data, root=0, sim_bytes=size, algorithm=algorithm)
            return ctx.wtime() - t0

        result = run_mpi(program, n_ranks, device_kind, comm_config)
        rows.append((size, max(result.returns)))
    return rows


def format_osu_report(
    title: str, rows: list[tuple[int, float]], unit: str = "us"
) -> str:
    """Render rows in the OSU two-column text style."""
    scale = {"us": 1e6, "ms": 1e3, "s": 1.0, "MB/s": 1e-6}[unit]
    lines = [f"# {title}", f"# Size    {unit}"]
    for size, value in rows:
        lines.append(f"{size:<10d}{value * scale:>14.2f}")
    return "\n".join(lines)
