"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.bench all
    python -m repro.bench fig8 table5 --actual-bytes 262144
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.harness import run_experiment

_ALL = ["table4", "table5", "fig7", "fig8", "fig9", "fig10", "fig11"]


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="pedal-bench",
        description="Regenerate the PEDAL paper's evaluation tables/figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment ids ({', '.join(_ALL)}) or 'all'",
    )
    parser.add_argument(
        "--actual-bytes",
        type=int,
        default=None,
        help="synthetic payload budget per dataset (default per experiment)",
    )
    args = parser.parse_args(argv)

    names: list[str] = []
    for name in args.experiments:
        if name == "all":
            names.extend(_ALL)
        else:
            names.append(name)

    for name in names:
        kwargs = {}
        if args.actual_bytes is not None:
            kwargs["actual_bytes"] = args.actual_bytes
        started = time.time()
        result = run_experiment(name, **kwargs)
        print(result.render())
        print(f"[{name} regenerated in {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
