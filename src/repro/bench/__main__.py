"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.bench all
    python -m repro.bench fig8 table5 --actual-bytes 262144
    python -m repro.bench fig7 --trace fig7.trace.json --metrics fig7.metrics.json
    python -m repro.bench fig7 fig9 --json out.json

``--trace`` records every simulated operation as dual-clock spans and
writes a Chrome trace-event file (open it in https://ui.perfetto.dev or
``chrome://tracing``); ``--trace-jsonl`` writes the same spans as a
JSONL event log.  ``--metrics`` dumps the counters/gauges/histograms
collected during the run.  ``--flamegraph`` profiles the codec kernels
(wall clock, deterministic sampled exemplars) and writes collapsed
stacks for flamegraph.pl / speedscope.  ``--json`` writes the
experiment grids in machine-readable form instead of scraping stdout.

``--faults`` runs every requested experiment under a deterministic
fault-injection plan (see :mod:`repro.faults`), e.g.::

    python -m repro.bench fig7 --faults seed=42,engine_fail=1.0 --metrics m.json

Retries/fallbacks show up in the metrics dump under ``faults.*`` and
the compressed artifacts stay byte-identical (persistent engine
failures escalate to the SoC pipeline).

Progress lines go through the ``repro.bench`` logger — silent unless
``REPRO_LOG=info`` (or ``debug``) is set.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro import obs
from repro.bench.harness import run_experiment
from repro.faults import FaultPlan, parse_fault_spec, set_fault_plan

_ALL = ["table4", "table5", "fig7", "fig8", "fig9", "fig10", "fig11", "sched",
        "serve", "obs", "edpc"]

log = obs.get_logger("bench")


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="pedal-bench",
        description="Regenerate the PEDAL paper's evaluation tables/figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment ids ({', '.join(_ALL)}) or 'all'",
    )
    parser.add_argument(
        "--actual-bytes",
        type=int,
        default=None,
        help="synthetic payload budget per dataset (default per experiment)",
    )
    parser.add_argument(
        "--pipeline-depth",
        type=int,
        default=None,
        help=(
            "C-Engine work-queue depth for the 'sched' experiment "
            "(1 = serial; default measures depths 1, 2, 4)"
        ),
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a Chrome trace-event JSON (sim-clock timeline) to PATH",
    )
    parser.add_argument(
        "--trace-jsonl",
        metavar="PATH",
        default=None,
        help="write the recorded spans as a JSONL event log to PATH",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write collected metrics (counters/gauges/histograms) to PATH",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write experiment rows + metadata as JSON to PATH",
    )
    parser.add_argument(
        "--flamegraph",
        metavar="PATH",
        default=None,
        help=(
            "profile codec kernels (wall clock, sampled exemplars) and "
            "write collapsed stacks to PATH (flamegraph.pl / speedscope)"
        ),
    )
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help=(
            "run under a deterministic fault plan, e.g. "
            "'seed=42,engine_fail=0.5,corrupt_output=0.1' "
            "(keys: FaultConfig fields)"
        ),
    )
    args = parser.parse_args(argv)

    fault_config = parse_fault_spec(args.faults) if args.faults else None

    names: list[str] = []
    for name in args.experiments:
        if name == "all":
            names.extend(_ALL)
        else:
            names.append(name)

    tracer = obs.Tracer() if (args.trace or args.trace_jsonl) else None
    metrics = obs.MetricsRegistry() if args.metrics else None
    profiler = obs.CodecProfiler() if args.flamegraph else None
    prev_tracer = obs.set_tracer(tracer) if tracer is not None else None
    prev_metrics = obs.set_metrics(metrics) if metrics is not None else None
    prev_profiler = (
        obs.set_profiler(profiler) if profiler is not None else None
    )
    prev_plan = (
        set_fault_plan(FaultPlan(fault_config))
        if fault_config is not None
        else None
    )
    if fault_config is not None:
        log.info("fault plan active: %s", args.faults)

    results = []
    try:
        for name in names:
            kwargs = {}
            if args.actual_bytes is not None:
                kwargs["actual_bytes"] = args.actual_bytes
            if name == "sched" and args.pipeline_depth is not None:
                kwargs["pipeline_depths"] = (1, args.pipeline_depth)
            started = time.time()
            result = run_experiment(name, **kwargs)
            results.append(result)
            print(result.render())
            print()
            log.info("%s regenerated in %.1fs", name, time.time() - started)
    finally:
        if tracer is not None:
            obs.set_tracer(prev_tracer)
        if metrics is not None:
            obs.set_metrics(prev_metrics)
        if profiler is not None:
            obs.set_profiler(prev_profiler)
        if fault_config is not None:
            set_fault_plan(prev_plan)

    if tracer is not None and args.trace:
        n = obs.write_chrome_trace(tracer, args.trace)
        log.info("wrote %d spans to %s", n, args.trace)
    if tracer is not None and args.trace_jsonl:
        obs.write_jsonl(tracer, args.trace_jsonl, metrics=metrics)
        log.info("wrote span JSONL to %s", args.trace_jsonl)
    if metrics is not None and args.metrics:
        obs.write_metrics_json(metrics, args.metrics)
        log.info("wrote metrics to %s", args.metrics)
    if profiler is not None and args.flamegraph:
        n = obs.write_flamegraph(profiler, args.flamegraph)
        log.info("wrote %d collapsed stacks to %s", n, args.flamegraph)
    if args.json:
        payload = {
            "generator": "repro.bench",
            "experiments": [result.as_dict() for result in results],
            "args": {"actual_bytes": args.actual_bytes, "faults": args.faults},
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        log.info("wrote experiment JSON to %s", args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
