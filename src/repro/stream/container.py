"""The RST1 self-describing chunked streaming container.

Layout (all integers little-endian):

* **Stream header** (12 bytes) — ``magic "RST1" | version u8 | algo u8 |
  flags u8 | reserved u8 | chunk_bytes u32``.  ``algo`` names the
  per-chunk codec (1 = DEFLATE, 2 = AC, 3 = LZ4); ``chunk_bytes`` is
  the compressor's chunking quantum and an upper bound on any frame's
  ``raw_len``.
* **Data frame** (13-byte header + payload) — ``kind 0x01 | comp_len
  u32 | raw_len u32 | crc32(raw chunk) u32`` followed by ``comp_len``
  payload bytes.  Each payload is one *complete, independent* stream of
  the container's codec, so chunks can be decompressed out of order /
  in parallel and a receiver never needs more than one frame of state.
* **End frame** (13 bytes, no payload) — ``kind 0x02 | 0 u32 |
  total_raw_len u32 | crc32(whole raw stream) u32``.  Mandatory: a
  container without it is *truncated*, and bytes after it are
  *trailing garbage* — both typed errors, never silent.

The parser is pull-based (``feed`` returns complete frames, keeps the
rest buffered), so corrupt length fields can only ever make the
decoder *report truncation at flush*, never block or hang.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.dpu.specs import Algo
from repro.errors import StreamCorruptError

__all__ = [
    "MAGIC",
    "VERSION",
    "FRAME_DATA",
    "FRAME_END",
    "STREAM_HEADER_BYTES",
    "FRAME_HEADER_BYTES",
    "ALGO_IDS",
    "ALGO_BY_ID",
    "StreamHeader",
    "Frame",
    "FrameParser",
    "encode_stream_header",
    "encode_data_frame",
    "encode_end_frame",
]

MAGIC = b"RST1"
VERSION = 1

_STREAM_HEADER = struct.Struct("<4sBBBBI")
_FRAME_HEADER = struct.Struct("<BIII")

STREAM_HEADER_BYTES = _STREAM_HEADER.size  # 12
FRAME_HEADER_BYTES = _FRAME_HEADER.size  # 13

FRAME_DATA = 0x01
FRAME_END = 0x02

_U32_MAX = 0xFFFF_FFFF

# Only the single-stage lossless codecs stream chunk-at-a-time.
ALGO_IDS: dict[Algo, int] = {Algo.DEFLATE: 1, Algo.AC: 2, Algo.LZ4: 3}
ALGO_BY_ID: dict[int, Algo] = {v: k for k, v in ALGO_IDS.items()}


@dataclass(frozen=True)
class StreamHeader:
    """Parsed RST1 stream header."""

    algo: Algo
    chunk_bytes: int


@dataclass(frozen=True)
class Frame:
    """One parsed frame (data or end)."""

    kind: int
    raw_len: int  # uncompressed chunk length (data) / total length (end)
    crc: int  # crc32 of the raw chunk (data) / whole raw stream (end)
    payload: bytes  # compressed chunk bytes (data) / b"" (end)

    @property
    def is_end(self) -> bool:
        return self.kind == FRAME_END


def encode_stream_header(algo: Algo, chunk_bytes: int) -> bytes:
    """Serialize the 12-byte stream header."""
    algo_id = ALGO_IDS.get(algo)
    if algo_id is None:
        raise StreamCorruptError(f"algo {algo!r} is not streamable")
    if not 0 < chunk_bytes <= _U32_MAX:
        raise StreamCorruptError(f"chunk_bytes {chunk_bytes} out of u32 range")
    return _STREAM_HEADER.pack(MAGIC, VERSION, algo_id, 0, 0, chunk_bytes)


def encode_data_frame(payload: bytes, raw_len: int, crc: int) -> bytes:
    """Serialize one data frame (header + compressed payload)."""
    if raw_len <= 0:
        raise StreamCorruptError("data frames must carry at least one raw byte")
    if len(payload) == 0 or len(payload) > _U32_MAX:
        raise StreamCorruptError(f"bad data-frame payload length {len(payload)}")
    return _FRAME_HEADER.pack(FRAME_DATA, len(payload), raw_len, crc) + payload


def encode_end_frame(total_raw_len: int, crc: int) -> bytes:
    """Serialize the mandatory terminator frame."""
    if not 0 <= total_raw_len <= _U32_MAX:
        raise StreamCorruptError(f"total length {total_raw_len} out of u32 range")
    return _FRAME_HEADER.pack(FRAME_END, 0, total_raw_len, crc)


class FrameParser:
    """Incremental RST1 parser with bounded look-ahead state.

    ``feed`` returns every frame completed by the new bytes and keeps
    at most one partial frame buffered.  Format violations raise
    :class:`~repro.errors.StreamCorruptError` at the earliest byte that
    proves them; truncation is the *caller's* end-of-input judgement
    (check :attr:`finished` / :attr:`pending_bytes` at flush).
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self.header: StreamHeader | None = None
        self.finished = False  # end frame parsed
        self.frames_parsed = 0

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered inside an incomplete header or frame."""
        return len(self._buf)

    def feed(self, data: bytes) -> list[Frame]:
        """Consume ``data``; return the frames it completed."""
        if self.finished:
            if data:
                raise StreamCorruptError(
                    f"{len(data)} trailing byte(s) after the end frame"
                )
            return []
        self._buf += data
        frames: list[Frame] = []
        if self.header is None:
            if len(self._buf) < STREAM_HEADER_BYTES:
                return frames
            self.header = self._parse_header()
        while not self.finished:
            frame = self._next_frame()
            if frame is None:
                break
            frames.append(frame)
        return frames

    # -- internals ---------------------------------------------------------

    def _parse_header(self) -> StreamHeader:
        magic, version, algo_id, flags, reserved, chunk_bytes = (
            _STREAM_HEADER.unpack_from(self._buf)
        )
        del self._buf[:STREAM_HEADER_BYTES]
        if magic != MAGIC:
            raise StreamCorruptError(f"bad stream magic {bytes(magic)!r}")
        if version != VERSION:
            raise StreamCorruptError(f"unsupported stream version {version}")
        algo = ALGO_BY_ID.get(algo_id)
        if algo is None:
            raise StreamCorruptError(f"unknown stream algo id {algo_id}")
        if flags != 0 or reserved != 0:
            raise StreamCorruptError(
                f"nonzero flags/reserved bytes ({flags}, {reserved})"
            )
        if chunk_bytes == 0:
            raise StreamCorruptError("zero chunk_bytes in stream header")
        return StreamHeader(algo=algo, chunk_bytes=chunk_bytes)

    def _next_frame(self) -> Frame | None:
        if len(self._buf) < FRAME_HEADER_BYTES:
            return None
        kind, comp_len, raw_len, crc = _FRAME_HEADER.unpack_from(self._buf)
        if kind == FRAME_END:
            if comp_len != 0:
                raise StreamCorruptError(
                    f"end frame declares {comp_len} payload bytes"
                )
            del self._buf[:FRAME_HEADER_BYTES]
            self.finished = True
            self.frames_parsed += 1
            if self._buf:
                raise StreamCorruptError(
                    f"{len(self._buf)} trailing byte(s) after the end frame"
                )
            return Frame(kind=kind, raw_len=raw_len, crc=crc, payload=b"")
        if kind != FRAME_DATA:
            raise StreamCorruptError(f"unknown frame kind 0x{kind:02x}")
        assert self.header is not None
        if comp_len == 0:
            raise StreamCorruptError("zero-length data-frame payload")
        if raw_len == 0 or raw_len > self.header.chunk_bytes:
            raise StreamCorruptError(
                f"data frame raw_len {raw_len} outside (0, "
                f"{self.header.chunk_bytes}]"
            )
        if len(self._buf) < FRAME_HEADER_BYTES + comp_len:
            return None
        payload = bytes(self._buf[FRAME_HEADER_BYTES:FRAME_HEADER_BYTES + comp_len])
        del self._buf[:FRAME_HEADER_BYTES + comp_len]
        self.frames_parsed += 1
        return Frame(kind=kind, raw_len=raw_len, crc=crc, payload=payload)
