"""Streaming compression for the fabric path (ZipLine-style).

A chunked, self-describing container (RST1) plus incremental
``Compressor``/``Decompressor`` objects with ``feed``/``flush``
semantics and bounded internal state.  MPI rendezvous
(:mod:`repro.mpi.streaming`) and the serving gateway
(:mod:`repro.serve.streaming`) share this one framing, so a stream
compressed anywhere in the system decodes anywhere else.
"""

from repro.stream.api import (
    DEFAULT_CHUNK_BYTES,
    Compressor,
    Decompressor,
    StreamConfig,
    chunk_codec,
    stream_compress,
    stream_decompress,
)
from repro.stream.container import (
    ALGO_BY_ID,
    ALGO_IDS,
    FRAME_DATA,
    FRAME_END,
    FRAME_HEADER_BYTES,
    MAGIC,
    STREAM_HEADER_BYTES,
    VERSION,
    Frame,
    FrameParser,
    StreamHeader,
    encode_data_frame,
    encode_end_frame,
    encode_stream_header,
)

__all__ = [
    "DEFAULT_CHUNK_BYTES",
    "Compressor",
    "Decompressor",
    "StreamConfig",
    "chunk_codec",
    "stream_compress",
    "stream_decompress",
    "ALGO_BY_ID",
    "ALGO_IDS",
    "FRAME_DATA",
    "FRAME_END",
    "FRAME_HEADER_BYTES",
    "MAGIC",
    "STREAM_HEADER_BYTES",
    "VERSION",
    "Frame",
    "FrameParser",
    "StreamHeader",
    "encode_data_frame",
    "encode_end_frame",
    "encode_stream_header",
]
