"""Streaming ``Compressor``/``Decompressor`` over the RST1 container.

ZipLine-style incremental compression for the fabric path: callers
``feed`` arbitrary byte slices and receive container bytes back as
soon as whole chunks are available, then ``flush`` to emit the final
partial chunk plus the mandatory end frame.  Internal state is bounded
by one chunk on both sides — a compressor buffers at most
``chunk_bytes`` of raw input, a decompressor at most one frame.

The chunk payloads are complete, independent streams of the configured
codec (DEFLATE / AC / LZ4), so MPI can ship them as separate wire
chunks and decompress them as they land, overlapping C-Engine work
with fabric transfer (see :mod:`repro.mpi.streaming`), while serve
reuses the exact same framing for large-payload requests
(:mod:`repro.serve.streaming`).

Flush ordering under a zero-length final chunk is part of the
contract: ``flush()`` after an empty (or absent) ``feed`` still emits
a well-formed header + terminator, and zero-length data frames are
never produced.  ``stream_compress``/``stream_decompress`` are the
one-shot conveniences; feeding the same bytes at any split points
yields the identical container.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable

from repro.algorithms.ac.codec import ac_compress, ac_decompress
from repro.algorithms.deflate.compress import deflate_compress
from repro.algorithms.deflate.decompress import deflate_decompress
from repro.algorithms.lz4.frame import lz4_compress, lz4_decompress
from repro.core.codecs import CodecConfig
from repro.dpu.specs import Algo
from repro.errors import (
    CodecError,
    OutputOverflowError,
    StreamChecksumError,
    StreamCorruptError,
    StreamError,
    StreamStateError,
    StreamTruncatedError,
)
from repro.stream.container import (
    ALGO_IDS,
    FrameParser,
    encode_data_frame,
    encode_end_frame,
    encode_stream_header,
)

__all__ = [
    "DEFAULT_CHUNK_BYTES",
    "StreamConfig",
    "Compressor",
    "Decompressor",
    "stream_compress",
    "stream_decompress",
    "chunk_codec",
]

# Streaming quantum: large enough to amortize per-chunk codec/frame
# overhead, small enough that a 4 MiB message pipelines ~16 deep.
DEFAULT_CHUNK_BYTES = 256 * 1024

_U32_MAX = 0xFFFF_FFFF


@dataclass(frozen=True)
class StreamConfig:
    """Tuning for one streaming (de)compression session."""

    algo: Algo = Algo.DEFLATE
    chunk_bytes: int = DEFAULT_CHUNK_BYTES
    codecs: CodecConfig = field(default_factory=CodecConfig)

    def __post_init__(self) -> None:
        if self.algo not in ALGO_IDS:
            raise StreamError(
                f"algo {getattr(self.algo, 'value', self.algo)!r} is not "
                f"streamable (supported: "
                f"{sorted(a.value for a in ALGO_IDS)})"
            )
        if not 0 < self.chunk_bytes <= _U32_MAX:
            raise StreamError(
                f"chunk_bytes must be in [1, 2**32), got {self.chunk_bytes}"
            )


def chunk_codec(
    algo: Algo, codecs: CodecConfig | None = None
) -> "tuple[Callable[[bytes], bytes], Callable[[bytes], bytes]]":
    """The per-chunk ``(compress, decompress)`` pair for ``algo``.

    Shared by the streaming API and the MPI per-chunk engine jobs so
    both sides agree byte-for-byte on what a chunk payload is.
    """
    cfg = codecs or CodecConfig()
    if algo is Algo.DEFLATE:
        return (
            lambda chunk: deflate_compress(chunk, cfg.deflate),
            lambda blob: deflate_decompress(blob),
        )
    if algo is Algo.AC:
        return (
            lambda chunk: ac_compress(chunk, cfg.ac),
            lambda blob: ac_decompress(blob),
        )
    if algo is Algo.LZ4:
        return (
            lambda chunk: lz4_compress(chunk),
            lambda blob: lz4_decompress(blob),
        )
    raise StreamError(f"algo {getattr(algo, 'value', algo)!r} is not streamable")


class Compressor:
    """Incremental RST1 compressor (``feed``/``flush``)."""

    def __init__(self, config: StreamConfig | None = None) -> None:
        self.config = config or StreamConfig()
        self._compress, _ = chunk_codec(self.config.algo, self.config.codecs)
        self._buf = bytearray()
        self._crc = 0
        self._total = 0
        self._header_emitted = False
        self._finished = False
        self.chunks_emitted = 0

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def buffered_bytes(self) -> int:
        """Raw bytes held back waiting for a full chunk (< chunk_bytes
        after every ``feed`` — the bounded-state guarantee)."""
        return len(self._buf)

    def feed(self, chunk: bytes) -> bytes:
        """Absorb ``chunk``; return any container bytes now complete."""
        if self._finished:
            raise StreamStateError("feed() after flush()")
        view = bytes(chunk)
        if not view:
            return b""  # empty feed is a no-op, not a frame
        if self._total + len(view) > _U32_MAX:
            raise StreamError("streams are limited to < 4 GiB of raw input")
        out = bytearray(self._emit_header())
        self._crc = zlib.crc32(view, self._crc) & _U32_MAX
        self._total += len(view)
        self._buf += view
        size = self.config.chunk_bytes
        while len(self._buf) >= size:
            out += self._emit_chunk(bytes(self._buf[:size]))
            del self._buf[:size]
        return bytes(out)

    def flush(self) -> bytes:
        """Emit the final partial chunk (if any) and the end frame.

        Valid immediately after construction or an empty ``feed``: the
        result is still a well-formed container (header + terminator)
        that decodes to ``b""``.
        """
        if self._finished:
            raise StreamStateError("flush() called twice")
        out = bytearray(self._emit_header())
        if self._buf:
            out += self._emit_chunk(bytes(self._buf))
            self._buf.clear()
        out += encode_end_frame(self._total, self._crc)
        self._finished = True
        return bytes(out)

    # -- internals ---------------------------------------------------------

    def _emit_header(self) -> bytes:
        if self._header_emitted:
            return b""
        self._header_emitted = True
        return encode_stream_header(self.config.algo, self.config.chunk_bytes)

    def _emit_chunk(self, raw: bytes) -> bytes:
        payload = self._compress(raw)
        self.chunks_emitted += 1
        return encode_data_frame(payload, len(raw), zlib.crc32(raw) & _U32_MAX)


class Decompressor:
    """Incremental RST1 decompressor (``feed``/``flush``).

    Every error is a typed :class:`~repro.errors.StreamError` (format
    violations, checksum mismatches, truncation at flush) or
    :class:`~repro.errors.OutputOverflowError`; corrupt input can never
    hang — the parser simply stops at the damaged byte.
    """

    def __init__(self, max_output: int | None = None) -> None:
        self.max_output = max_output
        self._parser = FrameParser()
        self._decompress: "Callable[[bytes], bytes] | None" = None
        self._crc = 0
        self._total = 0
        self._flushed = False
        self.chunks_decoded = 0

    @property
    def finished(self) -> bool:
        """True once the end frame has been parsed and verified."""
        return self._parser.finished

    @property
    def algo(self) -> Algo | None:
        """The container's codec (None until the header arrives)."""
        header = self._parser.header
        return None if header is None else header.algo

    def feed(self, data: bytes) -> bytes:
        """Absorb container bytes; return the raw bytes they complete."""
        if self._flushed:
            raise StreamStateError("feed() after flush()")
        out = bytearray()
        for frame in self._parser.feed(bytes(data)):
            if frame.is_end:
                self._check_end(frame.raw_len, frame.crc)
                continue
            out += self._decode_chunk(frame.payload, frame.raw_len, frame.crc)
        return bytes(out)

    def flush(self) -> bytes:
        """Declare end-of-input; raises if the container is incomplete."""
        if self._flushed:
            raise StreamStateError("flush() called twice")
        if not self._parser.finished:
            raise StreamTruncatedError(
                "container truncated: no end frame after "
                f"{self.chunks_decoded} chunk(s) "
                f"({self._parser.pending_bytes} byte(s) buffered mid-frame)"
            )
        self._flushed = True
        return b""

    # -- internals ---------------------------------------------------------

    def _decode_chunk(self, payload: bytes, raw_len: int, crc: int) -> bytes:
        header = self._parser.header
        assert header is not None
        if self._decompress is None:
            _, self._decompress = chunk_codec(header.algo)
        if self.max_output is not None and self._total + raw_len > self.max_output:
            raise OutputOverflowError(
                f"stream exceeds max_output={self.max_output} at chunk "
                f"{self.chunks_decoded}"
            )
        try:
            raw = self._decompress(payload)
        except StreamError:
            raise
        except CodecError as exc:
            raise StreamCorruptError(
                f"chunk {self.chunks_decoded} payload undecodable: {exc}"
            ) from exc
        if len(raw) != raw_len:
            raise StreamCorruptError(
                f"chunk {self.chunks_decoded} decoded to {len(raw)} bytes, "
                f"frame declared {raw_len}"
            )
        actual = zlib.crc32(raw) & _U32_MAX
        if actual != crc:
            raise StreamChecksumError("chunk crc32", crc, actual)
        self._crc = zlib.crc32(raw, self._crc) & _U32_MAX
        self._total += raw_len
        self.chunks_decoded += 1
        return raw

    def _check_end(self, total_raw_len: int, crc: int) -> None:
        if total_raw_len != self._total:
            raise StreamCorruptError(
                f"end frame declares {total_raw_len} raw bytes, "
                f"decoded {self._total}"
            )
        if crc != self._crc:
            raise StreamChecksumError("stream crc32", crc, self._crc)


def stream_compress(data: bytes, config: StreamConfig | None = None) -> bytes:
    """One-shot convenience: the container for ``data``."""
    comp = Compressor(config)
    return comp.feed(data) + comp.flush()


def stream_decompress(blob: bytes, max_output: int | None = None) -> bytes:
    """One-shot convenience: decode a complete container."""
    dec = Decompressor(max_output=max_output)
    out = dec.feed(blob)
    dec.flush()
    return out
