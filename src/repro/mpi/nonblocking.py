"""Non-blocking point-to-point: MPI_Isend / MPI_Irecv / Wait / Waitall.

A non-blocking call spawns the blocking flow as its own simulated
process and returns a :class:`Request` handle.  ``wait`` yields until
that process completes; ``test`` polls without blocking.  Compression
happens inside the spawned flow exactly as in the blocking path, so a
rank can overlap codec/communication work across several in-flight
messages (the C-Engine and SoC resources arbitrate contention).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Iterable

from repro.sim.engine import Process

if TYPE_CHECKING:
    from repro.mpi.runtime import RankContext

__all__ = ["Request", "waitall"]


class Request:
    """Handle to an in-flight non-blocking operation."""

    __slots__ = ("_proc",)

    def __init__(self, proc: Process) -> None:
        self._proc = proc

    @property
    def complete(self) -> bool:
        """True once the operation has finished (MPI_Test semantics)."""
        return self._proc.processed

    def wait(self) -> Generator:
        """Block until completion; returns the received data (irecv)
        or None (isend)."""
        value = yield self._proc
        return value


def isend(
    ctx: "RankContext",
    dest: int,
    data: Any,
    tag: int = 0,
    sim_bytes: float | None = None,
) -> Request:
    """Start a non-blocking send; returns its :class:`Request`."""
    proc = ctx.env.process(
        ctx.send(dest, data, tag=tag, sim_bytes=sim_bytes),
        name=f"isend:{ctx.rank}->{dest}",
    )
    return Request(proc)


def irecv(ctx: "RankContext", source: int = -1, tag: int = -1) -> Request:
    """Start a non-blocking receive; ``wait`` returns the data."""
    proc = ctx.env.process(
        ctx.recv(source=source, tag=tag), name=f"irecv:{ctx.rank}<-{source}"
    )
    return Request(proc)


def waitall(ctx: "RankContext", requests: Iterable[Request]) -> Generator:
    """MPI_Waitall: block until every request completes.

    Returns the per-request values in order.
    """
    values = yield ctx.env.all_of([req._proc for req in requests])
    return values
