"""Non-blocking point-to-point: MPI_Isend / MPI_Irecv / Wait / Waitall.

A non-blocking call spawns the blocking flow as its own simulated
process and returns a :class:`Request` handle.  ``wait`` yields until
that process completes; ``test`` polls without blocking.  Compression
happens inside the spawned flow exactly as in the blocking path, so a
rank can overlap codec/communication work across several in-flight
messages (the C-Engine and SoC resources arbitrate contention).

Requests are not limited to sends and receives: :func:`icompress`
starts the PEDAL compression shim as its own in-flight operation (the
prepared wire payload is the request's value, ready for
:meth:`~repro.mpi.runtime.RankContext.send_prepared`), and
:func:`from_ticket` wraps a pipelined C-Engine job
(:class:`~repro.sched.JobTicket`) so ``waitall`` can await compression
jobs and communication side by side.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Iterable

from repro.sim.engine import Event

if TYPE_CHECKING:
    from repro.mpi.runtime import RankContext
    from repro.sched import JobTicket

__all__ = ["Request", "waitall", "icompress", "from_ticket"]


class Request:
    """Handle to an in-flight non-blocking operation.

    Wraps any simulation event — usually the :class:`~repro.sim.Process`
    of a spawned send/receive flow, but equally an in-flight compression
    (see :func:`icompress` / :func:`from_ticket`).
    """

    __slots__ = ("_proc",)

    def __init__(self, proc: Event) -> None:
        self._proc = proc

    @property
    def complete(self) -> bool:
        """True once the operation has finished (MPI_Test semantics)."""
        return self._proc.processed

    def wait(self) -> Generator:
        """Block until completion; returns the operation's value (the
        received data for irecv, the prepared payload for icompress,
        the :class:`~repro.sched.JobOutcome` for a pipeline ticket,
        None for isend)."""
        value = yield self._proc
        return value


def isend(
    ctx: "RankContext",
    dest: int,
    data: Any,
    tag: int = 0,
    sim_bytes: float | None = None,
) -> Request:
    """Start a non-blocking send; returns its :class:`Request`."""
    proc = ctx.env.process(
        ctx.send(dest, data, tag=tag, sim_bytes=sim_bytes),
        name=f"isend:{ctx.rank}->{dest}",
    )
    return Request(proc)


def irecv(ctx: "RankContext", source: int = -1, tag: int = -1) -> Request:
    """Start a non-blocking receive; ``wait`` returns the data."""
    proc = ctx.env.process(
        ctx.recv(source=source, tag=tag), name=f"irecv:{ctx.rank}<-{source}"
    )
    return Request(proc)


def icompress(
    ctx: "RankContext", data: Any, sim_bytes: float | None = None
) -> Request:
    """Start the outbound compression shim as an in-flight operation.

    The rank keeps computing (or communicating) while the codec work
    runs; ``wait`` returns the prepared ``(payload, wire_bytes, meta)``
    triple, which :meth:`~repro.mpi.runtime.RankContext.send_prepared`
    puts on the wire without recompressing — the compress-ahead overlap
    the pipelined C-Engine work queue exists for.
    """
    from repro.mpi.runtime import _default_sim_bytes

    nominal = _default_sim_bytes(data) if sim_bytes is None else float(sim_bytes)
    proc = ctx.env.process(
        ctx.layer.outbound(data, nominal), name=f"icompress:{ctx.rank}"
    )
    return Request(proc)


def from_ticket(ticket: "JobTicket") -> Request:
    """Wrap a pipelined C-Engine job as an MPI request.

    Lets a rank await in-flight work-queue jobs
    (:meth:`~repro.sched.PipelineScheduler.submit`) with the same
    ``wait``/``waitall`` machinery as sends and receives; the request's
    value is the job's :class:`~repro.sched.JobOutcome`.
    """
    return Request(ticket.event)


def waitall(ctx: "RankContext", requests: Iterable[Request]) -> Generator:
    """MPI_Waitall: block until every request completes.

    Returns the per-request values in order.
    """
    values = yield ctx.env.all_of([req._proc for req in requests])
    return values
