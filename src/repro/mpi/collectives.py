"""Collective operations composed from point-to-point sends/receives.

Every hop goes through the full compression shim, exactly as the
MPICH co-design composes (each relay decompresses at ``MPI_Recv`` and
recompresses at its ``MPI_Send``).  Broadcast offers MPICH's two
algorithms — binomial tree (short messages / small communicators) and
scatter + ring-allgather (long messages); gather/scatter are linear;
reduce is a binomial-tree fold; allgather is a ring; allreduce composes
reduce + bcast; alltoall is a pairwise exchange.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator

import numpy as np

from repro.obs import device_span

if TYPE_CHECKING:
    from repro.mpi.runtime import RankContext

__all__ = [
    "bcast",
    "gather",
    "scatter",
    "reduce",
    "allgather",
    "allreduce",
    "alltoall",
    "BCAST_LONG_MSG_BYTES",
]

_BCAST_TAG = 0x7B01
_GATHER_TAG = 0x7B02
_SCATTER_TAG = 0x7B03
_REDUCE_TAG = 0x7B04
_ALLGATHER_TAG = 0x7B05
_ALLTOALL_TAG = 0x7B06

# MPICH's default switchover to scatter+ring-allgather broadcast.
BCAST_LONG_MSG_BYTES = 512 * 1024

# Simulated wire charge for the tiny size-agreement control message
# auto-bcast sends when no ``sim_bytes`` hint is available (one
# 8-byte count, MPI_Bcast's envelope convention).
_AUTO_CTRL_SIM_BYTES = 8.0


def _payload_nbytes(data: Any) -> int:
    """Actual byte size of a payload (ndarray or bytes-like)."""
    return data.nbytes if isinstance(data, np.ndarray) else len(data)


def _split(data: Any, parts: int) -> list[Any]:
    """Split a payload into ``parts`` roughly equal chunks.

    When ``parts > len(data)`` the tail chunks are *empty* (b"" or
    zero-length arrays) — deliberately so: scatter/allgather round-trip
    them losslessly (``_join`` restores the original payload), the
    compression shim passes zero-byte messages through uncompressed
    below the rendezvous threshold, and a zero-byte PEDAL message
    round-trips as a 3-byte header.  ``parts`` must be >= 1.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if isinstance(data, np.ndarray):
        return [np.ascontiguousarray(c) for c in np.array_split(data, parts)]
    n = len(data)
    base = n // parts
    rem = n % parts
    chunks = []
    pos = 0
    for i in range(parts):
        take = base + (1 if i < rem else 0)
        chunks.append(data[pos : pos + take])
        pos += take
    return chunks


def _join(chunks: list[Any]) -> Any:
    if isinstance(chunks[0], np.ndarray):
        return np.concatenate(chunks)
    joined = bytearray()
    for chunk in chunks:
        joined += chunk
    return bytes(joined)


def bcast(
    ctx: "RankContext",
    data: Any,
    root: int = 0,
    sim_bytes: float | None = None,
    algorithm: str = "binomial",
) -> Generator:
    """Broadcast ``data`` from ``root``; returns it on every rank.

    ``algorithm``: ``"binomial"`` (tree), ``"scatter_allgather"``
    (MPICH's long-message algorithm), or ``"auto"`` (switch on the
    message size against :data:`BCAST_LONG_MSG_BYTES`).

    Auto sizing: ``sim_bytes`` decides when given.  Without it the
    *root's actual payload size* decides (``len`` / ``nbytes``) — the
    historical behavior treated a missing hint as zero bytes and
    always picked binomial, silently pessimizing long messages.  Only
    the root holds the payload, and every rank must pick the same
    algorithm or the collective deadlocks, so the root first shares
    its size over a tiny binomial control broadcast (charged
    ``_AUTO_CTRL_SIM_BYTES`` on the wire); with a ``sim_bytes`` hint
    no extra hop is needed.
    """
    if algorithm == "auto":
        if sim_bytes is not None:
            nominal = float(sim_bytes)
        else:
            nominal = yield from _bcast_binomial(
                ctx,
                float(_payload_nbytes(data)) if ctx.rank == root else None,
                root,
                _AUTO_CTRL_SIM_BYTES,
            )
        algorithm = (
            "scatter_allgather"
            if nominal > BCAST_LONG_MSG_BYTES and ctx.size > 2
            else "binomial"
        )
    if algorithm not in ("binomial", "scatter_allgather"):
        raise ValueError(f"unknown bcast algorithm {algorithm!r}")
    with device_span("mpi.bcast", ctx.device, rank=ctx.rank, root=root,
                     algorithm=algorithm):
        if algorithm == "scatter_allgather":
            result = yield from _bcast_scatter_allgather(
                ctx, data, root, sim_bytes
            )
        else:
            result = yield from _bcast_binomial(ctx, data, root, sim_bytes)
    return result


def _bcast_binomial(
    ctx: "RankContext", data: Any, root: int, sim_bytes: float | None
) -> Generator:
    size = ctx.size
    rank = ctx.rank
    relative = (rank - root) % size

    # Receive phase: wait for the parent's copy.
    mask = 1
    while mask < size:
        if relative & mask:
            src = (rank - mask) % size
            data = yield from ctx.recv(source=src, tag=_BCAST_TAG)
            break
        mask <<= 1

    # Send phase: forward to children in decreasing mask order.
    mask >>= 1
    while mask > 0:
        if relative + mask < size:
            dst = (rank + mask) % size
            yield from ctx.send(dst, data, tag=_BCAST_TAG, sim_bytes=sim_bytes)
        mask >>= 1
    return data


def _bcast_scatter_allgather(
    ctx: "RankContext", data: Any, root: int, sim_bytes: float | None
) -> Generator:
    """MPICH's long-message broadcast: scatter chunks, ring-allgather.

    Moves ~2x the data of the binomial tree in total, but each transfer
    is ``1/p`` of the message, so the critical path carries far fewer
    bytes — the standard large-message trade.
    """
    size = ctx.size
    if size == 1:
        return data
    chunk_sim = None if sim_bytes is None else sim_bytes / size
    chunks = _split(data, size) if ctx.rank == root else None
    mine = yield from scatter(ctx, chunks, root=root, sim_bytes=chunk_sim)

    # Ring allgather: after p-1 steps every rank holds every chunk.
    # Non-blocking sends avoid the classic all-blocking-send rendezvous
    # deadlock; chunk indices are deterministic per step, so only the
    # chunk bytes travel.
    from repro.mpi.nonblocking import isend

    collected: dict[int, Any] = {(ctx.rank - root) % size: mine}
    right = (ctx.rank + 1) % size
    left = (ctx.rank - 1) % size
    for step in range(size - 1):
        send_idx = (ctx.rank - root - step) % size
        recv_idx = (ctx.rank - root - step - 1) % size
        req = isend(
            ctx, right, collected[send_idx], tag=_ALLGATHER_TAG, sim_bytes=chunk_sim
        )
        chunk = yield from ctx.recv(source=left, tag=_ALLGATHER_TAG)
        collected[recv_idx] = chunk
        yield from req.wait()
    return _join([collected[i] for i in range(size)])


def gather(
    ctx: "RankContext", data: Any, root: int = 0, sim_bytes: float | None = None
) -> Generator:
    """Linear gather; the root returns the rank-ordered list, others None."""
    with device_span("mpi.gather", ctx.device, rank=ctx.rank, root=root):
        if ctx.rank == root:
            out: list[Any] = [None] * ctx.size
            out[root] = data
            for _ in range(ctx.size - 1):
                envlp_source, item = yield from ctx.recv_with_source(
                    tag=_GATHER_TAG
                )
                out[envlp_source] = item
            return out
        yield from ctx.send(root, data, tag=_GATHER_TAG, sim_bytes=sim_bytes)
    return None


def scatter(
    ctx: "RankContext",
    chunks: "list[Any] | None",
    root: int = 0,
    sim_bytes: float | None = None,
) -> Generator:
    """Linear scatter of a root-side list; returns this rank's chunk."""
    with device_span("mpi.scatter", ctx.device, rank=ctx.rank, root=root):
        if ctx.rank == root:
            assert chunks is not None and len(chunks) == ctx.size
            for dst in range(ctx.size):
                if dst != root:
                    yield from ctx.send(
                        dst, chunks[dst], tag=_SCATTER_TAG, sim_bytes=sim_bytes
                    )
            return chunks[root]
        item = yield from ctx.recv(source=root, tag=_SCATTER_TAG)
    return item


def allgather(
    ctx: "RankContext", data: Any, sim_bytes: float | None = None
) -> Generator:
    """Ring allgather; every rank returns the rank-ordered list."""
    from repro.mpi.nonblocking import isend

    size = ctx.size
    if size == 1:
        return [data]
    with device_span("mpi.allgather", ctx.device, rank=ctx.rank):
        collected: dict[int, Any] = {ctx.rank: data}
        right = (ctx.rank + 1) % size
        left = (ctx.rank - 1) % size
        for step in range(size - 1):
            send_idx = (ctx.rank - step) % size
            recv_idx = (ctx.rank - step - 1) % size
            req = isend(
                ctx, right, collected[send_idx], tag=_ALLGATHER_TAG,
                sim_bytes=sim_bytes,
            )
            chunk = yield from ctx.recv(source=left, tag=_ALLGATHER_TAG)
            collected[recv_idx] = chunk
            yield from req.wait()
    return [collected[i] for i in range(size)]


def allreduce(
    ctx: "RankContext",
    data: Any,
    op: Callable[[Any, Any], Any],
    sim_bytes: float | None = None,
) -> Generator:
    """Reduce-then-broadcast allreduce (MPICH's small-communicator path)."""
    with device_span("mpi.allreduce", ctx.device, rank=ctx.rank):
        reduced = yield from reduce(ctx, data, op, root=0, sim_bytes=sim_bytes)
        result = yield from bcast(ctx, reduced, root=0, sim_bytes=sim_bytes)
    return result


def alltoall(
    ctx: "RankContext", chunks: list[Any], sim_bytes: float | None = None
) -> Generator:
    """Pairwise-exchange alltoall; ``chunks[d]`` goes to rank ``d``.

    Returns the rank-ordered list of chunks received.  Non-blocking
    sends keep the exchange deadlock-free; the XOR-pairing schedule
    keeps each step contention-free on the fabric.
    """
    from repro.mpi.nonblocking import isend, waitall

    size = ctx.size
    if len(chunks) != size:
        raise ValueError(f"alltoall needs {size} chunks, got {len(chunks)}")
    with device_span("mpi.alltoall", ctx.device, rank=ctx.rank):
        out: list[Any] = [None] * size
        out[ctx.rank] = chunks[ctx.rank]
        requests = []
        for peer in range(size):
            if peer != ctx.rank:
                requests.append(
                    isend(ctx, peer, chunks[peer], tag=_ALLTOALL_TAG,
                          sim_bytes=sim_bytes)
                )
        for _ in range(size - 1):
            source, chunk = yield from ctx.recv_with_source(tag=_ALLTOALL_TAG)
            out[source] = chunk
        yield from waitall(ctx, requests)
    return out


def reduce(
    ctx: "RankContext",
    data: Any,
    op: Callable[[Any, Any], Any],
    root: int = 0,
    sim_bytes: float | None = None,
) -> Generator:
    """Binomial-tree reduction with a commutative ``op``.

    The root returns the reduced value, others None.
    """
    size = ctx.size
    relative = (ctx.rank - root) % size
    value = data
    with device_span("mpi.reduce", ctx.device, rank=ctx.rank, root=root):
        mask = 1
        while mask < size:
            if relative & mask:
                dst = (ctx.rank - mask) % size
                yield from ctx.send(
                    dst, value, tag=_REDUCE_TAG, sim_bytes=sim_bytes
                )
                return None
            src_rel = relative | mask
            if src_rel < size:
                src = (src_rel + root) % size
                other = yield from ctx.recv(source=src, tag=_REDUCE_TAG)
                value = op(value, other)
            mask <<= 1
    return value
