"""MPI datatypes.

The paper's ``PEDAL_compress`` takes a ``datatype`` argument because the
lossy design needs to know the element type (int, float, double) to run
SZ3 correctly; lossless designs treat everything as bytes.  The same
split appears here: each :class:`Datatype` knows its numpy dtype (or
None for raw bytes) and whether SZ3 may be applied.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Datatype", "MPI_BYTE", "MPI_INT", "MPI_FLOAT", "MPI_DOUBLE"]


@dataclass(frozen=True)
class Datatype:
    """An MPI basic datatype."""

    name: str
    np_dtype: np.dtype | None  # None = untyped bytes
    size: int  # bytes per element

    @property
    def lossy_capable(self) -> bool:
        """True if SZ3 (floating-point lossy) applies to this type."""
        return self.np_dtype is not None and self.np_dtype.kind == "f"

    def count_of(self, data) -> int:
        """Element count of a buffer of this datatype."""
        if isinstance(data, np.ndarray):
            return data.size
        return len(data) // self.size


MPI_BYTE = Datatype("MPI_BYTE", None, 1)
MPI_INT = Datatype("MPI_INT", np.dtype(np.int32), 4)
MPI_FLOAT = Datatype("MPI_FLOAT", np.dtype(np.float32), 4)
MPI_DOUBLE = Datatype("MPI_DOUBLE", np.dtype(np.float64), 8)
