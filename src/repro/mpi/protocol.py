"""Point-to-point message protocols: eager vs rendezvous.

MPICH-style behaviour: messages at or below the eager threshold are
pushed to the receiver immediately (one wire transfer, buffered at the
destination if no receive is posted); larger messages handshake —
Request-To-Send, wait for a matching posted receive, Clear-To-Send,
then the payload moves directly into the destination buffer.

PEDAL "operates on MPI's Rendezvous (RNDV) protocol for larger message
sizes rather than the Eager protocol" (paper §IV), because compression
latency swamps small messages; the integration layer consults
:func:`should_compress` accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any

from repro.obs import get_metrics

__all__ = [
    "EAGER_THRESHOLD_BYTES",
    "Protocol",
    "Envelope",
    "protocol_for",
    "should_compress",
]

# MPICH's default netmod eager/rendezvous switchover is 64 KiB.
EAGER_THRESHOLD_BYTES = 64 * 1024


class Protocol(str, Enum):
    EAGER = "eager"
    RENDEZVOUS = "rendezvous"


@dataclass
class Envelope:
    """One in-flight message (matching key + payload + wire metadata)."""

    source: int
    dest: int
    tag: int
    protocol: Protocol
    payload: Any
    wire_bytes: float  # simulated bytes that cross the fabric
    meta: dict  # simulation bookkeeping (e.g. nominal uncompressed size)
    cts: Any = None  # CTS event, rendezvous only
    data_ready: Any = None  # payload-arrived event, rendezvous only


def protocol_for(sim_bytes: float, eager_threshold: int = EAGER_THRESHOLD_BYTES) -> Protocol:
    """Protocol selection by *pre-compression* (sim) message size.

    Convention: both deciders — this one and :func:`should_compress` —
    operate on the same byte domain, the uncompressed size the sender
    holds *before* the shim runs.  Deciding from post-compression wire
    bytes instead would let a message that compresses below the
    threshold flip from rendezvous to eager *after* the compress
    decision was made, producing compressed-eager traffic the receiver
    never handshakes for.  At exactly ``eager_threshold`` the message
    is eager (and uncompressed); one byte above it is rendezvous (and
    compression-eligible).
    """
    proto = Protocol.EAGER if sim_bytes <= eager_threshold else Protocol.RENDEZVOUS
    metrics = get_metrics()
    if metrics.recording:
        metrics.inc(f"mpi.protocol.{proto.value}")
    return proto


def should_compress(sim_bytes: float, rndv_threshold: int = EAGER_THRESHOLD_BYTES) -> bool:
    """PEDAL's rule: compress only messages on the rendezvous path.

    Same byte domain as :func:`protocol_for` (pre-compression size), so
    the two decisions can never disagree when the thresholds match —
    which :class:`~repro.mpi.pedal_integration.CommConfig` enforces.
    """
    decision = sim_bytes > rndv_threshold
    metrics = get_metrics()
    if metrics.recording:
        metrics.inc(
            "pedal.compress_eligible" if decision else "pedal.compress_skipped"
        )
    return decision
