"""The PEDAL <-> MPICH integration shim (paper §IV, Fig. 6).

Sender side: sits between the MPI abstraction and the transport; when a
message takes the rendezvous path, the user buffer is compressed and
the wire carries ``PEDAL header + compressed payload``.  Receiver side:
the receive is posted with a PEDAL-owned buffer; once the full message
arrives it is decompressed straight into the user buffer.

Three modes:

* ``RAW`` — plain MPI, no compression (the uncompressed reference);
* ``PEDAL`` — the co-design: pooled buffers, DOCA init hoisted into
  ``MPI_Init``;
* ``NAIVE`` — the paper's baseline: same compression algorithms, but
  memory allocation and DOCA initialisation on every message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Generator

from repro.core.api import PedalConfig, PedalContext
from repro.core.baseline import NaiveCompressor
from repro.core.codecs import CodecConfig
from repro.core.designs import CompressionDesign, design as lookup_design
from repro.core.header import HEADER_SIZE, PedalHeader
from repro.dpu.device import BlueFieldDPU
from repro.errors import MpiConfigError
from repro.mpi.protocol import EAGER_THRESHOLD_BYTES, should_compress
from repro.obs import get_metrics
from repro.sim import TimeBreakdown
from repro.stream import DEFAULT_CHUNK_BYTES as STREAM_CHUNK_BYTES

__all__ = ["CommMode", "CommConfig", "CompressionLayer"]


class CommMode(str, Enum):
    RAW = "raw"
    PEDAL = "pedal"
    NAIVE = "naive"


@dataclass(frozen=True)
class CommConfig:
    """Per-job communication-layer configuration."""

    mode: CommMode = CommMode.RAW
    design: "str | CompressionDesign | None" = None
    codecs: CodecConfig = field(default_factory=CodecConfig)
    # PEDAL compresses only rendezvous-path messages (paper §IV).
    rndv_threshold: int = EAGER_THRESHOLD_BYTES
    eager_threshold: int = EAGER_THRESHOLD_BYTES
    pool_buffers: int = 4
    # ZipLine-style streaming rendezvous: chunk the payload through
    # repro.stream and overlap C-Engine work with fabric transfer.
    streaming: bool = False
    stream_chunk_bytes: int = STREAM_CHUNK_BYTES
    stream_depth: int = 2  # pipeline queue slots per streamed message

    def resolved_design(self) -> CompressionDesign | None:
        if self.design is None:
            return None
        return lookup_design(self.design)

    def __post_init__(self) -> None:
        if self.mode is not CommMode.RAW and self.design is None:
            raise ValueError(f"mode {self.mode.value} requires a design")
        # The compress decision (rndv_threshold) and the protocol
        # decision (eager_threshold) share one byte domain — the
        # pre-compression size.  Letting them diverge silently produces
        # compressed-eager messages (rndv < eager) or uncompressed-
        # rendezvous messages (rndv > eager), both of which break the
        # paper's "compress only rendezvous traffic" invariant.
        if self.rndv_threshold != self.eager_threshold:
            raise MpiConfigError(
                f"rndv_threshold ({self.rndv_threshold}) must equal "
                f"eager_threshold ({self.eager_threshold}): diverging them "
                "silently yields compressed-eager or uncompressed-rendezvous "
                "messages"
            )
        if self.eager_threshold < 0:
            raise MpiConfigError(
                f"eager_threshold must be >= 0, got {self.eager_threshold}"
            )
        if self.stream_chunk_bytes < 1:
            raise MpiConfigError(
                f"stream_chunk_bytes must be >= 1, got {self.stream_chunk_bytes}"
            )
        if self.stream_depth < 1:
            raise MpiConfigError(
                f"stream_depth must be >= 1, got {self.stream_depth}"
            )


class CompressionLayer:
    """Shim instance bound to one node (one DPU)."""

    def __init__(self, device: BlueFieldDPU, config: CommConfig) -> None:
        self.device = device
        self.config = config
        self.pedal: PedalContext | None = None
        self.naive: NaiveCompressor | None = None
        self.compress_seconds = 0.0
        self.decompress_seconds = 0.0
        if config.mode is CommMode.PEDAL:
            self.pedal = PedalContext(
                device,
                PedalConfig(codecs=config.codecs, pool_buffers=config.pool_buffers),
            )
        elif config.mode is CommMode.NAIVE:
            self.naive = NaiveCompressor(device, config.codecs)

    def mpi_init(self) -> Generator:
        """The ``MPI_Init`` hook: runs ``PEDAL_init`` (PEDAL mode only)."""
        if self.pedal is not None:
            breakdown = yield from self.pedal.init()
            return breakdown
        return TimeBreakdown()

    def mpi_finalize(self) -> Generator:
        if self.pedal is not None:
            yield from self.pedal.finalize()

    # -- send path -----------------------------------------------------------

    def outbound(
        self, data: Any, sim_bytes: float
    ) -> Generator:
        """Prepare a payload for the wire.

        Returns ``(payload, wire_bytes, meta)``.  ``payload`` is what
        the receiver's :meth:`inbound` will see; ``wire_bytes`` is the
        simulated size crossing the fabric.
        """
        cfg = self.config
        dsg = cfg.resolved_design()
        if cfg.mode is CommMode.RAW or dsg is None or not should_compress(
            sim_bytes, cfg.rndv_threshold
        ):
            if cfg.mode is CommMode.RAW:
                return data, sim_bytes, {
                    "compressed": False, "raw": True,
                    "sim_uncompressed": sim_bytes,
                }
            # PEDAL passthrough: header marks the message uncompressed.
            metrics = get_metrics()
            if metrics.recording:
                metrics.inc("mpi.shim.passthrough")
            return (
                (PedalHeader.passthrough(), data),
                sim_bytes + HEADER_SIZE,
                {"compressed": False, "raw": False,
                 "sim_uncompressed": sim_bytes},
            )

        metrics = get_metrics()
        if metrics.recording:
            metrics.inc("mpi.shim.compressed")
            metrics.inc("mpi.shim.sim_bytes_in", sim_bytes)
        t0 = self.device.env.now
        if cfg.mode is CommMode.PEDAL:
            assert self.pedal is not None
            result = yield from self.pedal.compress(data, dsg, sim_bytes)
        else:
            assert self.naive is not None
            result = yield from self.naive.compress(data, dsg, sim_bytes)
        self.compress_seconds += self.device.env.now - t0
        if metrics.recording:
            metrics.inc("mpi.shim.sim_bytes_wire", result.sim_compressed_bytes)
        meta = {
            "compressed": True,
            "raw": False,
            "sim_uncompressed": sim_bytes,
            "design": dsg,
            "breakdown": result.breakdown,
        }
        return result.message, result.sim_compressed_bytes, meta

    # -- receive path ----------------------------------------------------------

    def inbound(self, payload: Any, meta: dict) -> Generator:
        """Recover user data from a wire payload."""
        if meta.get("raw"):
            return payload
        if not meta.get("compressed"):
            _header, data = payload
            return data
        dsg: CompressionDesign = meta["design"]
        sim_bytes = meta["sim_uncompressed"]
        t0 = self.device.env.now
        if self.config.mode is CommMode.PEDAL:
            assert self.pedal is not None
            result = yield from self.pedal.decompress(
                payload, dsg.placement, sim_bytes
            )
        else:
            assert self.naive is not None
            result = yield from self.naive.decompress(
                payload, dsg.placement, sim_bytes
            )
        self.decompress_seconds += self.device.env.now - t0
        return result.data
