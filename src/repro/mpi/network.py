"""The interconnect fabric model.

InfiniBand-class links between DPU nodes: a transfer costs
``base_latency + bytes / link_bandwidth`` where the link bandwidth is
the min of the two endpoints' NIC rates (ConnectX-6 at 200 Gb/s for
BF2 pairs, ConnectX-7 at 400 Gb/s for BF3 pairs — paper §II-A).  Each
directed (src, dst) link is a FIFO resource, so concurrent messages
between the same pair serialise on the wire while disjoint pairs
proceed in parallel (full-bisection switch, as on the Thor cluster).
"""

from __future__ import annotations

from typing import Generator

from repro.dpu.device import BlueFieldDPU
from repro.sim import Environment, Resource

__all__ = ["Fabric", "CONTROL_MESSAGE_BYTES"]

CONTROL_MESSAGE_BYTES = 64  # RTS/CTS envelopes


class Fabric:
    """Point-to-point interconnect between a fixed set of nodes."""

    def __init__(self, env: Environment, nodes: list[BlueFieldDPU]) -> None:
        self.env = env
        self.nodes = nodes
        self._links: dict[tuple[int, int], Resource] = {}
        self.bytes_moved = 0.0

    def _link(self, src: int, dst: int) -> Resource:
        key = (src, dst)
        link = self._links.get(key)
        if link is None:
            link = Resource(self.env, capacity=1)
            self._links[key] = link
        return link

    def link_bandwidth(self, src: int, dst: int) -> float:
        """Bytes/second between two node indices."""
        return min(
            self.nodes[src].spec.nic.bytes_per_second,
            self.nodes[dst].spec.nic.bytes_per_second,
        )

    def link_latency(self, src: int, dst: int) -> float:
        return max(
            self.nodes[src].spec.nic.base_latency_s,
            self.nodes[dst].spec.nic.base_latency_s,
        )

    def transfer_time(self, src: int, dst: int, nbytes: float) -> float:
        """Unloaded wire time for ``nbytes``."""
        return self.link_latency(src, dst) + nbytes / self.link_bandwidth(src, dst)

    def transfer(self, src: int, dst: int, nbytes: float) -> Generator:
        """Move ``nbytes`` over the (src, dst) link; returns wire seconds."""
        if src == dst:
            # Loopback: a memory copy on the local node.
            seconds = self.nodes[src].memory.copy_time(int(nbytes))
            yield self.env.timeout(seconds)
            return seconds
        link = self._link(src, dst)
        req = link.request()
        yield req
        try:
            seconds = self.transfer_time(src, dst, nbytes)
            yield self.env.timeout(seconds)
            self.bytes_moved += nbytes
        finally:
            link.release(req)
        return seconds

    def control(self, src: int, dst: int) -> Generator:
        """Send a control envelope (RTS/CTS); returns wire seconds."""
        seconds = yield from self.transfer(src, dst, CONTROL_MESSAGE_BYTES)
        return seconds
