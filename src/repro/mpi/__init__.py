"""A simulated MPI runtime (MPICH stand-in) with the PEDAL co-design.

The paper integrates PEDAL between MPICH's shim and transport layers
(paper §IV, Fig. 6): ``MPI_Send`` compresses before handing the buffer
to UCX/OFI, ``MPI_Recv`` posts PEDAL-owned buffers and decompresses into
the user buffer, and ``PEDAL_init`` runs inside ``MPI_Init``.

Here the transport is a latency/bandwidth fabric over the DES kernel,
ranks are simulated processes (one per DPU node), and the same three
integration points exist:

* :class:`~repro.mpi.pedal_integration.CommConfig` selects RAW (no
  compression), PEDAL (pooled, init hoisted into ``MPI_Init``), or
  NAIVE (per-message DOCA init — the paper's baseline);
* point-to-point uses eager/rendezvous protocols with PEDAL active only
  on the rendezvous path (paper §IV, last paragraph);
* collectives (binomial-tree Bcast and friends) compose the pt2pt path,
  so every hop decompresses and recompresses exactly as MPICH would.

Public API
----------
:func:`run_mpi`, :class:`RankContext` — launch rank programs.
:class:`CommConfig`, :class:`CommMode` — communication configuration.
"""

from repro.mpi.datatypes import MPI_BYTE, MPI_DOUBLE, MPI_FLOAT, MPI_INT, Datatype
from repro.mpi.pedal_integration import CommConfig, CommMode
from repro.mpi.runtime import MpiJobResult, RankContext, run_mpi

__all__ = [
    "CommConfig",
    "CommMode",
    "Datatype",
    "MPI_BYTE",
    "MPI_DOUBLE",
    "MPI_FLOAT",
    "MPI_INT",
    "MpiJobResult",
    "RankContext",
    "run_mpi",
]
