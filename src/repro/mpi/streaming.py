"""ZipLine-style streaming rendezvous: compression *in* the fabric path.

The whole-message PEDAL path serializes three long stages — sender
codec, wire transfer, receiver codec.  Here the payload is chunked
through :mod:`repro.stream`'s RST1 container and the three stages
overlap per chunk: while chunk *k* crosses the wire, chunk *k+1* is
still compressing and chunk *k-1* is already decompressing on the
receiver.  Real bytes flow through the streaming ``Compressor`` /
``Decompressor`` (so the wire format is exactly the shared container,
byte-identical to a one-shot :func:`~repro.stream.stream_compress`),
while simulated time is charged per chunk on the design's placement:

* ``Placement.CENGINE`` — per-chunk :class:`~repro.sched.EngineJob`
  through a bounded :class:`~repro.sched.PipelineScheduler` (engine
  FIFO + per-job overhead; non-native algos SoC-steal as usual);
* ``Placement.SOC`` — per-chunk core occupancy on the SoC pool,
  bounded by ``stream_depth`` in-flight chunks.

Streamed messages are rendezvous *by construction*: streaming applies
only above the compress threshold, and the protocol decision is pinned
to the same pre-compression size (see :func:`repro.mpi.protocol.
protocol_for`).  The RTS/CTS handshake is unchanged; the data phase
ships one fabric transfer per container frame and the receiver
consumes frames from a :class:`~repro.sim.Store` as they land.

Per-chunk sim sizes follow the core scaling convention: ``scale =
sim_bytes / len(raw)`` maps every real chunk/frame length into the
simulated byte domain, so the streamed wire total equals the real
container size times the same scale the whole-message path uses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.core.designs import CompressionDesign, Placement
from repro.dpu.specs import Direction
from repro.errors import StreamError
from repro.mpi.protocol import Envelope, Protocol, should_compress
from repro.obs import device_span
from repro.sched import EngineJob, PipelineScheduler, SchedConfig
from repro.sim import Event, Resource, Store
from repro.stream import ALGO_IDS, Compressor, Decompressor, StreamConfig

if TYPE_CHECKING:
    from repro.mpi.runtime import RankContext

__all__ = ["wants_stream", "stream_send", "stream_recv"]

_END = None  # Store sentinel: all frames delivered


def wants_stream(layer, data, sim_bytes: float) -> bool:
    """Whether this send should take the streaming rendezvous path."""
    cfg = layer.config
    if not cfg.streaming or layer.pedal is None:
        return False
    dsg = cfg.resolved_design()
    if dsg is None or dsg.algo not in ALGO_IDS:
        return False  # lossy / two-stage designs stay whole-message
    if not isinstance(data, (bytes, bytearray, memoryview)):
        return False
    if len(data) == 0:
        return False
    return should_compress(sim_bytes, cfg.rndv_threshold)


class _ChunkEngine:
    """Bounded per-chunk codec-time model for one streamed message."""

    def __init__(self, device, design: CompressionDesign, depth: int) -> None:
        self.device = device
        self.design = design
        if design.placement is Placement.CENGINE:
            self._sched = PipelineScheduler(device, SchedConfig(depth=depth))
            self._slots = None
        else:
            self._sched = None
            self._slots = Resource(device.env, capacity=depth)

    def submit(self, direction: Direction, engine_sim_bytes: float,
               raw_sim_bytes: float, tag: object):
        """Start one chunk's codec work; returns a yieldable event."""
        if self._sched is not None:
            job = EngineJob(
                algo=self.design.algo,
                direction=direction,
                sim_bytes=engine_sim_bytes,
                soc_sim_bytes=raw_sim_bytes,
                tag=tag,
            )
            return self._sched.submit(job).event
        return self.device.env.process(
            self._soc_chunk(direction, raw_sim_bytes),
            name=f"stream-soc:{self.device.name}:{tag}",
        )

    def _soc_chunk(self, direction: Direction, raw_sim_bytes: float) -> Generator:
        # SoC codec throughputs are calibrated against uncompressed
        # bytes in both directions; the slot bounds in-flight chunks so
        # one streamed message cannot monopolise the core pool.
        assert self._slots is not None
        slot = self._slots.request()
        yield slot
        try:
            soc = self.device.soc
            seconds = soc.codec_time(
                self.design.algo, direction, raw_sim_bytes
            )
            yield from soc.run(seconds)
        finally:
            self._slots.release(slot)


def stream_send(
    ctx: "RankContext", dest: int, data, tag: int, sim_bytes: float
) -> Generator:
    """Send ``data`` as a streamed rendezvous message."""
    layer = ctx.layer
    cfg = layer.config
    dsg = cfg.resolved_design()
    assert dsg is not None
    raw = bytes(data)
    scale = sim_bytes / len(raw)
    stream_cfg = StreamConfig(
        algo=dsg.algo, chunk_bytes=cfg.stream_chunk_bytes, codecs=cfg.codecs
    )

    # Real bytes: cut the container frames up front (wall-clock work);
    # sim time for each chunk's codec is charged below, overlapped.
    comp = Compressor(stream_cfg)
    frames: list[tuple[bytes, int]] = []  # (container bytes, raw chunk len)
    for start in range(0, len(raw), cfg.stream_chunk_bytes):
        chunk = raw[start:start + cfg.stream_chunk_bytes]
        frames.append((comp.feed(chunk), len(chunk)))
    tail = comp.flush()  # end frame (+ final partial chunk, already cut)
    out_bytes, raw_len = frames[-1]
    frames[-1] = (out_bytes + tail, raw_len)
    wire_total = sum(len(f) for f, _ in frames) * scale

    env = ctx.env
    store = Store(env)
    meta = {
        "stream": True,
        "compressed": True,
        "raw": False,
        "sim_uncompressed": sim_bytes,
        "design": dsg,
        "scale": scale,
        "chunks": len(frames),
        "stream_config": stream_cfg,
    }
    envlp = Envelope(
        source=ctx.rank,
        dest=dest,
        tag=tag,
        protocol=Protocol.RENDEZVOUS,
        payload=store,
        wire_bytes=wire_total,
        meta=meta,
        cts=Event(env),
        data_ready=Event(env),
    )

    comm = ctx.comm
    comm.messages_sent += 1
    with device_span(
        "mpi.stream_send", ctx.device,
        rank=ctx.rank, dest=dest, tag=tag,
        sim_bytes=sim_bytes, wire_bytes=wire_total, chunks=len(frames),
    ):
        yield from comm.fabric.control(ctx.rank, dest)  # RTS
        comm._arrive(envlp)
        yield envlp.cts

        engine = _ChunkEngine(ctx.device, dsg, cfg.stream_depth)
        t0 = env.now
        tickets = [
            engine.submit(
                Direction.COMPRESS,
                engine_sim_bytes=raw_len * scale,
                raw_sim_bytes=raw_len * scale,
                tag=i,
            )
            for i, (_, raw_len) in enumerate(frames)
        ]
        for ticket, (frame_bytes, _) in zip(tickets, frames):
            yield ticket  # chunk compressed
            yield from comm.fabric.transfer(
                ctx.rank, dest, len(frame_bytes) * scale
            )
            store.put(frame_bytes)
        layer.compress_seconds += env.now - t0
        store.put(_END)
        envlp.data_ready.succeed()


def stream_recv(ctx: "RankContext", envlp: Envelope) -> Generator:
    """Receive and decode a streamed rendezvous message."""
    meta = envlp.meta
    dsg: CompressionDesign = meta["design"]
    scale: float = meta["scale"]
    store: Store = envlp.payload
    cfg = ctx.layer.config
    env = ctx.env

    engine = _ChunkEngine(ctx.device, dsg, cfg.stream_depth)
    dec = Decompressor()
    parts: list[bytes] = []
    tickets = []
    t0 = env.now
    with device_span(
        "mpi.stream_recv", ctx.device,
        rank=ctx.rank, source=envlp.source, tag=envlp.tag,
        wire_bytes=envlp.wire_bytes, chunks=meta["chunks"],
    ):
        while True:
            frame_bytes = yield store.get()
            if frame_bytes is _END:
                break
            raw = dec.feed(frame_bytes)
            parts.append(raw)
            # Decode time overlaps later transfers: the codec job is
            # submitted as soon as this frame lands, and the loop goes
            # straight back to waiting on the next frame.
            tickets.append(
                engine.submit(
                    Direction.DECOMPRESS,
                    engine_sim_bytes=len(frame_bytes) * scale,
                    raw_sim_bytes=len(raw) * scale,
                    tag=dec.chunks_decoded,
                )
            )
        dec.flush()  # typed StreamTruncatedError if the sender lied
        if len(parts) != meta["chunks"]:
            raise StreamError(
                f"expected {meta['chunks']} chunks, decoded {len(parts)}"
            )
        for ticket in tickets:
            yield ticket
        ctx.layer.decompress_seconds += env.now - t0
    return b"".join(parts)
