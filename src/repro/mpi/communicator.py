"""Message matching and blocking point-to-point transport.

One :class:`Communicator` spans all ranks of a job.  Matching follows
MPI semantics: a receive posted for ``(source, tag)`` matches the
oldest unexpected message with that key, otherwise it blocks; arriving
messages first look for a matching posted receive, otherwise they join
the unexpected queue.  ``ANY_SOURCE``/``ANY_TAG`` wildcards are
supported with MPI's non-overtaking ordering per (source, tag) pair.
"""

from __future__ import annotations

from collections import deque
from typing import Generator

from repro.dpu.device import BlueFieldDPU
from repro.errors import MpiTruncationError
from repro.mpi.network import Fabric
from repro.mpi.protocol import Envelope, Protocol, protocol_for
from repro.sim import Environment, Event

__all__ = ["Communicator", "ANY_SOURCE", "ANY_TAG"]

ANY_SOURCE = -1
ANY_TAG = -1


class _PostedRecv:
    __slots__ = ("source", "tag", "event")

    def __init__(self, source: int, tag: int, event: Event) -> None:
        self.source = source
        self.tag = tag
        self.event = event

    def matches(self, env: Envelope) -> bool:
        return (self.source in (ANY_SOURCE, env.source)) and (
            self.tag in (ANY_TAG, env.tag)
        )


class Communicator:
    """COMM_WORLD over a set of DPU nodes."""

    def __init__(
        self,
        env: Environment,
        nodes: list[BlueFieldDPU],
        fabric: Fabric,
        eager_threshold: int,
    ) -> None:
        self.env = env
        self.nodes = nodes
        self.fabric = fabric
        self.eager_threshold = eager_threshold
        self._unexpected: list[deque[Envelope]] = [deque() for _ in nodes]
        self._posted: list[deque[_PostedRecv]] = [deque() for _ in nodes]
        self.messages_sent = 0

    @property
    def size(self) -> int:
        return len(self.nodes)

    # -- matching ----------------------------------------------------------

    def _arrive(self, envlp: Envelope) -> None:
        """A message (eager payload or rendezvous RTS) reaches ``dest``."""
        posted = self._posted[envlp.dest]
        for rec in posted:
            if rec.matches(envlp):
                posted.remove(rec)
                rec.event.succeed(envlp)
                return
        self._unexpected[envlp.dest].append(envlp)

    def _match_or_wait(self, dest: int, source: int, tag: int) -> Event:
        """Event yielding the matching :class:`Envelope` for a receive."""
        ev = Event(self.env)
        unexpected = self._unexpected[dest]
        for envlp in unexpected:
            if (source in (ANY_SOURCE, envlp.source)) and (
                tag in (ANY_TAG, envlp.tag)
            ):
                unexpected.remove(envlp)
                ev.succeed(envlp)
                return ev
        self._posted[dest].append(_PostedRecv(source, tag, ev))
        return ev

    # -- blocking point-to-point --------------------------------------------

    def send(
        self,
        source: int,
        dest: int,
        tag: int,
        payload,
        wire_bytes: float,
        meta: dict | None = None,
    ) -> Generator:
        """Blocking send (MPI_Send semantics over eager/rendezvous)."""
        meta = dict(meta or {})
        # Protocol choice is pinned to the *pre-compression* size (the
        # shim records it as ``sim_uncompressed``), so a message that
        # compresses below the eager threshold stays rendezvous — the
        # decision compression was predicated on.  Bare sends without
        # shim metadata fall back to the wire size (the two are equal
        # when nothing was compressed).
        decision_bytes = meta.get("sim_uncompressed", wire_bytes)
        proto = protocol_for(decision_bytes, self.eager_threshold)
        envlp = Envelope(
            source=source,
            dest=dest,
            tag=tag,
            protocol=proto,
            payload=payload,
            wire_bytes=wire_bytes,
            meta=meta,
        )
        self.messages_sent += 1
        if proto is Protocol.EAGER:
            yield from self.fabric.transfer(source, dest, wire_bytes)
            self._arrive(envlp)
            return

        # Rendezvous: RTS -> (receiver matches, sends CTS) -> data.
        envlp.cts = Event(self.env)
        envlp.data_ready = Event(self.env)
        yield from self.fabric.control(source, dest)  # RTS
        self._arrive(envlp)
        yield envlp.cts
        yield from self.fabric.transfer(source, dest, wire_bytes)
        envlp.data_ready.succeed()

    def recv(
        self,
        dest: int,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        max_bytes: float | None = None,
    ) -> Generator:
        """Blocking receive; returns the matched :class:`Envelope`."""
        envlp = yield self._match_or_wait(dest, source, tag)
        if max_bytes is not None and envlp.wire_bytes > max_bytes:
            raise MpiTruncationError(
                f"incoming message of {envlp.wire_bytes:.0f} wire bytes exceeds "
                f"posted buffer of {max_bytes:.0f}"
            )
        if envlp.protocol is Protocol.RENDEZVOUS:
            yield from self.fabric.control(dest, envlp.source)  # CTS
            envlp.cts.succeed()
            if not envlp.meta.get("stream"):
                yield envlp.data_ready
            # Streamed rendezvous returns at CTS time: the payload is a
            # Store of container frames that the receiver drains chunk
            # by chunk (repro.mpi.streaming), overlapping decompression
            # with the remaining transfers instead of waiting for the
            # whole message to land.
        return envlp
