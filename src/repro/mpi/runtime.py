"""The MPI job runtime: launch rank programs on simulated DPU nodes.

A *rank program* is a generator function ``def program(ctx): ...`` that
yields simulation events through the :class:`RankContext` helpers, just
like an ``mpi4py`` script uses its communicator.  :func:`run_mpi`
builds the cluster (one DPU per rank), runs the ``MPI_Init`` hooks
(which host ``PEDAL_init`` — paper §IV), executes all rank programs to
completion, and reports their return values plus timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator

import numpy as np

from repro.dpu.device import BlueFieldDPU, make_device
from repro.errors import MpiAbortError
from repro.mpi import collectives
from repro.mpi.communicator import ANY_SOURCE, ANY_TAG, Communicator
from repro.mpi.network import Fabric
from repro.mpi.pedal_integration import CommConfig, CompressionLayer
from repro.obs import device_span
from repro.sim import Environment, Event, TimeBreakdown

__all__ = ["RankContext", "MpiJobResult", "run_mpi"]


class _Barrier:
    """Generation-counted central barrier."""

    def __init__(self, env: Environment, size: int) -> None:
        self.env = env
        self.size = size
        self._count = 0
        self._event = Event(env)

    def wait(self) -> Generator:
        self._count += 1
        event = self._event
        if self._count == self.size:
            self._count = 0
            self._event = Event(self.env)
            event.succeed()
        yield event


def _default_sim_bytes(data: Any) -> float:
    if isinstance(data, np.ndarray):
        return float(data.nbytes)
    if isinstance(data, (bytes, bytearray, memoryview)):
        return float(len(data))
    return 64.0  # small control object


class RankContext:
    """Everything one rank sees: identity, clock, and communication."""

    def __init__(
        self,
        rank: int,
        comm: Communicator,
        layer: CompressionLayer,
        barrier: _Barrier,
    ) -> None:
        self.rank = rank
        self.comm = comm
        self.layer = layer
        self._barrier = barrier

    @property
    def size(self) -> int:
        return self.comm.size

    @property
    def env(self) -> Environment:
        return self.comm.env

    @property
    def device(self) -> BlueFieldDPU:
        return self.comm.nodes[self.rank]

    def wtime(self) -> float:
        """MPI_Wtime: the simulated clock."""
        return self.env.now

    # -- point-to-point ------------------------------------------------------

    def send(
        self,
        dest: int,
        data: Any,
        tag: int = 0,
        sim_bytes: float | None = None,
    ) -> Generator:
        """MPI_Send through the compression shim."""
        from repro.mpi import streaming

        nominal = _default_sim_bytes(data) if sim_bytes is None else float(sim_bytes)
        if streaming.wants_stream(self.layer, data, nominal):
            yield from streaming.stream_send(self, dest, data, tag, nominal)
            return
        with device_span(
            "mpi.send", self.device,
            rank=self.rank, dest=dest, tag=tag, sim_bytes=nominal,
        ) as span:
            payload, wire_bytes, meta = yield from self.layer.outbound(data, nominal)
            span.set_attr("wire_bytes", wire_bytes)
            yield from self.comm.send(
                self.rank, dest, tag, payload, wire_bytes, meta
            )

    def send_prepared(
        self, dest: int, prepared: tuple, tag: int = 0
    ) -> Generator:
        """Send a payload already prepared by :meth:`icompress`.

        ``prepared`` is the ``(payload, wire_bytes, meta)`` triple an
        :func:`~repro.mpi.nonblocking.icompress` request resolved to;
        only the wire transfer is charged here — the codec work already
        happened in flight.
        """
        payload, wire_bytes, meta = prepared
        with device_span(
            "mpi.send", self.device,
            rank=self.rank, dest=dest, tag=tag, wire_bytes=wire_bytes,
            prepared=True,
        ):
            yield from self.comm.send(
                self.rank, dest, tag, payload, wire_bytes, meta
            )

    def recv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Generator:
        """MPI_Recv through the compression shim; returns the data."""
        from repro.mpi import streaming

        with device_span(
            "mpi.recv", self.device, rank=self.rank, source=source, tag=tag,
        ) as span:
            envlp = yield from self.comm.recv(self.rank, source, tag)
            span.set_attr("protocol", envlp.protocol.value)
            span.set_attr("wire_bytes", envlp.wire_bytes)
            if envlp.meta.get("stream"):
                data = yield from streaming.stream_recv(self, envlp)
            else:
                data = yield from self.layer.inbound(envlp.payload, envlp.meta)
        return data

    def recv_with_source(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Generator:
        """Like :meth:`recv` but returns ``(source, data)`` (MPI_Status)."""
        from repro.mpi import streaming

        with device_span(
            "mpi.recv", self.device, rank=self.rank, source=source, tag=tag,
        ) as span:
            envlp = yield from self.comm.recv(self.rank, source, tag)
            span.set_attr("protocol", envlp.protocol.value)
            span.set_attr("wire_bytes", envlp.wire_bytes)
            if envlp.meta.get("stream"):
                data = yield from streaming.stream_recv(self, envlp)
            else:
                data = yield from self.layer.inbound(envlp.payload, envlp.meta)
        return envlp.source, data

    # -- non-blocking point-to-point ------------------------------------------

    def isend(
        self,
        dest: int,
        data: Any,
        tag: int = 0,
        sim_bytes: float | None = None,
    ):
        """MPI_Isend: start a send, return a Request."""
        from repro.mpi.nonblocking import isend

        return isend(self, dest, data, tag=tag, sim_bytes=sim_bytes)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """MPI_Irecv: start a receive, return a Request."""
        from repro.mpi.nonblocking import irecv

        return irecv(self, source=source, tag=tag)

    def icompress(self, data: Any, sim_bytes: float | None = None):
        """Start outbound compression in flight; returns a Request whose
        value feeds :meth:`send_prepared`."""
        from repro.mpi.nonblocking import icompress

        return icompress(self, data, sim_bytes=sim_bytes)

    def waitall(self, requests) -> Generator:
        """MPI_Waitall over Request handles; returns their values."""
        from repro.mpi.nonblocking import waitall

        values = yield from waitall(self, requests)
        return values

    # -- collectives ----------------------------------------------------------

    def bcast(
        self,
        data: Any,
        root: int = 0,
        sim_bytes: float | None = None,
        algorithm: str = "binomial",
    ) -> Generator:
        result = yield from collectives.bcast(self, data, root, sim_bytes, algorithm)
        return result

    def allgather(self, data: Any, sim_bytes: float | None = None) -> Generator:
        result = yield from collectives.allgather(self, data, sim_bytes)
        return result

    def allreduce(
        self,
        data: Any,
        op: Callable[[Any, Any], Any],
        sim_bytes: float | None = None,
    ) -> Generator:
        result = yield from collectives.allreduce(self, data, op, sim_bytes)
        return result

    def alltoall(self, chunks: list, sim_bytes: float | None = None) -> Generator:
        result = yield from collectives.alltoall(self, chunks, sim_bytes)
        return result

    def gather(self, data: Any, root: int = 0, sim_bytes: float | None = None) -> Generator:
        result = yield from collectives.gather(self, data, root, sim_bytes)
        return result

    def scatter(
        self, chunks: "list[Any] | None", root: int = 0, sim_bytes: float | None = None
    ) -> Generator:
        result = yield from collectives.scatter(self, chunks, root, sim_bytes)
        return result

    def reduce(
        self,
        data: Any,
        op: Callable[[Any, Any], Any],
        root: int = 0,
        sim_bytes: float | None = None,
    ) -> Generator:
        result = yield from collectives.reduce(self, data, op, root, sim_bytes)
        return result

    def barrier(self) -> Generator:
        yield from self._barrier.wait()

    def abort(self, reason: str) -> None:
        raise MpiAbortError(self.rank, reason)


@dataclass
class MpiJobResult:
    """Outcome of one simulated MPI job."""

    returns: list[Any]
    init_seconds: float  # MPI_Init duration (hosts PEDAL_init)
    elapsed_seconds: float  # job time after MPI_Init
    env: Environment
    layers: list[CompressionLayer]
    init_breakdowns: list[TimeBreakdown]


def run_mpi(
    rank_program: Callable[[RankContext], Generator],
    n_ranks: int,
    device_kind: str = "bf2",
    comm_config: CommConfig | None = None,
    devices: "list[BlueFieldDPU] | None" = None,
    env: Environment | None = None,
) -> MpiJobResult:
    """Run ``rank_program`` on ``n_ranks`` simulated DPU nodes.

    ``device_kind`` builds a homogeneous cluster (``"bf2"``/``"bf3"``);
    pass ``devices`` for a heterogeneous one.  The communication layer
    is configured by ``comm_config`` (RAW by default).
    """
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    env = env or Environment()
    cfg = comm_config or CommConfig()
    if devices is None:
        devices = [make_device(env, device_kind) for _ in range(n_ranks)]
    elif len(devices) != n_ranks:
        raise ValueError("devices list must match n_ranks")

    fabric = Fabric(env, devices)
    comm = Communicator(env, devices, fabric, cfg.eager_threshold)
    layers = [CompressionLayer(dev, cfg) for dev in devices]
    barrier = _Barrier(env, n_ranks)

    # MPI_Init: run every rank's init hook (PEDAL_init lives here).
    init_procs = [env.process(layer.mpi_init()) for layer in layers]
    breakdowns = env.run(until=env.all_of(init_procs))
    init_seconds = env.now

    contexts = [RankContext(r, comm, layers[r], barrier) for r in range(n_ranks)]
    procs = [env.process(rank_program(ctx), name=f"rank{ctx.rank}") for ctx in contexts]
    returns = env.run(until=env.all_of(procs))
    elapsed = env.now - init_seconds

    return MpiJobResult(
        returns=returns,
        init_seconds=init_seconds,
        elapsed_seconds=elapsed,
        env=env,
        layers=layers,
        init_breakdowns=breakdowns,
    )
