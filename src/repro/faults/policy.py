"""Retry and SoC-fallback policy for C-Engine jobs.

The registry's *capability* fallback (paper §III-D) redirects designs
the hardware can never run; this module adds the *runtime* mirror of
that decision: a job the hardware should run but keeps failing is
retried under an exponential sim-clock backoff and, once the attempt
budget is exhausted, escalated to the SoC pipeline by the caller.

:func:`engine_job_with_retry` is the shared driver used by both the
PEDAL context and the naive baseline.  It raises
:class:`EngineFallback` when the engine must be given up on — the
caller then runs its existing SoC path, which is exactly what makes
fault runs byte-identical to fault-free runs (the real codec bytes
never depend on which engine the simulation charged).

Every retry, detected corruption, and backoff is counted in
:mod:`repro.obs` metrics (``faults.retries``,
``faults.corruptions_detected``, ``faults.attempts`` histogram) and the
backoff waits appear as ``fault.backoff`` spans on the device track.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.errors import DocaTransientError
from repro.faults.plan import get_fault_plan
from repro.obs import device_span, get_metrics
from repro.obs.metrics import RETRY_ATTEMPT_BUCKETS
from repro.util.checksums import crc32

if TYPE_CHECKING:
    from repro.dpu.device import BlueFieldDPU
    from repro.dpu.specs import Algo, Direction
    from repro.sim import TimeBreakdown

__all__ = ["RetryPolicy", "EngineFallback", "engine_job_with_retry",
           "backoff_wait", "PHASE_RETRY"]

# Breakdown phase for retry backoff waits and corruption re-verification.
PHASE_RETRY = "fault_retry"


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget and sim-clock exponential backoff."""

    max_attempts: int = 3          # total engine attempts before fallback
    backoff_base: float = 2e-5     # sim seconds before the 2nd attempt
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")

    def backoff(self, failed_attempts: int) -> float:
        """Wait before the next attempt, after ``failed_attempts`` failures."""
        return self.backoff_base * self.backoff_multiplier ** (failed_attempts - 1)


class EngineFallback(Exception):
    """Control-flow signal: give up on the C-Engine, use the SoC.

    Deliberately *not* a :class:`~repro.errors.ReproError`: it must
    never escape the policy layer's callers, who translate it into the
    SoC pipeline.
    """

    def __init__(self, reason: str, attempts: int) -> None:
        super().__init__(f"C-Engine given up after {attempts} attempts: {reason}")
        self.reason = reason
        self.attempts = attempts


def engine_job_with_retry(
    device: "BlueFieldDPU",
    algo: "Algo",
    direction: "Direction",
    sim_bytes: float,
    policy: RetryPolicy,
    breakdown: "TimeBreakdown",
    phase: str,
    payload: "bytes | None" = None,
) -> Generator:
    """Run one C-Engine job under ``policy``; returns the (possibly
    re-verified) ``payload``.

    Engine execution time — including time burned by failed attempts —
    is charged to ``phase``; backoff waits and corruption verification
    go to :data:`PHASE_RETRY`.  When ``payload`` is given, the active
    fault plan may corrupt it; the corruption is detected by CRC-32
    comparison against the engine's job completion record (the
    "existing checksum layer" of the wire formats stands in for the
    DOCA output CRC here) and treated as one more transient failure.
    Raises :class:`EngineFallback` once ``policy.max_attempts`` engine
    attempts have failed.
    """
    env = device.env
    plan = get_fault_plan()
    metrics = get_metrics()
    failed = 0
    while True:
        try:
            seconds = yield from device.cengine.submit(algo, direction, sim_bytes)
        except DocaTransientError as exc:
            failed += 1
            if exc.sim_seconds > 0:
                breakdown.add(phase, exc.sim_seconds)
            if metrics.recording:
                metrics.inc("faults.retries")
                metrics.observe("faults.attempts", float(failed),
                                RETRY_ATTEMPT_BUCKETS)
            if failed >= policy.max_attempts:
                raise EngineFallback(str(exc), failed) from exc
            yield from backoff_wait(device, policy, failed, breakdown)
            continue
        breakdown.add(phase, seconds)
        if payload is None or not plan.active:
            return payload
        damaged, corrupted = plan.corrupt_engine_output(
            f"{device.name}.{algo.value}.{direction.value}", payload, env.now
        )
        if not corrupted:
            return payload
        # The engine DMA'd a damaged buffer: verify against the job's
        # completion checksum on SoC cores, then resubmit.
        verify = device.soc.checksum_time(sim_bytes)
        with device_span("fault.verify", device, device=device.name,
                         algo=algo.value, direction=direction.value):
            yield from device.soc.run(verify)
        breakdown.add(PHASE_RETRY, verify)
        if crc32(damaged) == crc32(payload):  # pragma: no cover - collision
            return damaged
        failed += 1
        if metrics.recording:
            metrics.inc("faults.corruptions_detected")
            metrics.inc("faults.retries")
            metrics.observe("faults.attempts", float(failed),
                            RETRY_ATTEMPT_BUCKETS)
        if failed >= policy.max_attempts:
            raise EngineFallback("output corruption persisted", failed)
        yield from backoff_wait(device, policy, failed, breakdown)


def backoff_wait(device: "BlueFieldDPU", policy: RetryPolicy, failed: int,
                 breakdown: "TimeBreakdown") -> Generator:
    """Sleep the policy's backoff for attempt ``failed`` on the sim clock."""
    wait = policy.backoff(failed)
    if wait <= 0:
        return
    with device_span("fault.backoff", device, device=device.name,
                     attempt=failed, wait_s=wait):
        yield device.env.timeout(wait)
    breakdown.add(PHASE_RETRY, wait)
