"""Whole-worker kill schedules: deterministic DPU death on the sim clock.

:mod:`repro.faults.plan` perturbs individual engine *operations*; the
cluster layer needs a coarser failure unit — an entire DPU worker
falling off the bus mid-run.  A :class:`WorkerKillSchedule` is an
explicit, sorted list of ``(sim time, worker name)`` kills, either
written out by hand (the bench pins one mid-run kill) or drawn from a
seed (:meth:`WorkerKillSchedule.seeded`) with the same BLAKE2b
keyed-draw idiom the fault plans use, so a soak run's kill sequence is
reproducible from its seed alone.

:func:`worker_kill_process` replays a schedule against any object with
a ``kill_worker(name)`` method (a :class:`~repro.serve.ServeGateway`
or :class:`~repro.cluster.ServeCluster`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Generator, Iterable, Sequence

__all__ = ["WorkerKill", "WorkerKillSchedule", "worker_kill_process"]


@dataclass(frozen=True, order=True)
class WorkerKill:
    """One scheduled whole-worker death."""

    at_s: float
    worker: str

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError(f"kill time {self.at_s} must be >= 0")


def _draw(seed: int, site: str, index: int) -> float:
    """Uniform [0, 1) from a BLAKE2b keyed draw (plan.py's idiom)."""
    payload = f"{seed}:{site}:{index}".encode()
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64


class WorkerKillSchedule:
    """A sorted sequence of worker kills."""

    __slots__ = ("kills",)

    def __init__(self, kills: "Iterable[WorkerKill]") -> None:
        self.kills = tuple(sorted(kills))

    def __len__(self) -> int:
        return len(self.kills)

    def __iter__(self):
        return iter(self.kills)

    @classmethod
    def seeded(
        cls,
        workers: "Sequence[str]",
        seed: int,
        duration_s: float,
        kills: int = 1,
    ) -> "WorkerKillSchedule":
        """Draw ``kills`` distinct victims at seeded times in
        ``(0, duration_s)``.

        At most ``len(workers) - 1`` kills are drawn so at least one
        worker always survives (a fully dead fleet is a different test,
        written explicitly, not stumbled into by a seed).
        """
        if duration_s <= 0:
            raise ValueError(f"duration {duration_s} must be > 0")
        kills = min(kills, max(0, len(workers) - 1))
        victims: list[str] = []
        remaining = list(workers)
        out = []
        for i in range(kills):
            pick = int(_draw(seed, "faults.worker_kill.victim", i)
                       * len(remaining))
            victims.append(remaining.pop(min(pick, len(remaining) - 1)))
            at = _draw(seed, "faults.worker_kill.time", i) * duration_s
            out.append(WorkerKill(at_s=at, worker=victims[-1]))
        return cls(out)


def worker_kill_process(env, target, schedule: WorkerKillSchedule,
                        ) -> Generator:
    """Sim process: apply each kill at its scheduled instant.

    ``target`` is anything with ``kill_worker(name)`` — gateway or
    cluster.  Returns the list of kills applied (for assertions).
    """
    applied = []
    for kill in schedule:
        delay = kill.at_s - env.now
        if delay > 0.0:
            yield env.timeout(delay)
        target.kill_worker(kill.worker)
        applied.append(kill)
    return applied
