"""``repro.faults`` — deterministic fault injection for the DOCA path.

Two composable halves:

* **plans** (:mod:`repro.faults.plan`): seeded, sim-clock-deterministic
  decisions about which hardware operations misbehave — engine job
  failures, stalls/timeouts, degraded throughput, output corruption,
  and session-init failures.  Installed process-wide like the obs
  tracer/metrics (:func:`set_fault_plan` / :func:`injecting`), no-op by
  default.
* **policy** (:mod:`repro.faults.policy`): the caller-side response —
  :class:`RetryPolicy` (attempt budget + sim-clock exponential backoff)
  and the shared retry driver that escalates a persistently failing
  C-Engine job to the SoC pipeline, mirroring the registry's capability
  fallback at run time.

Typical use::

    from repro import faults

    with faults.injecting(seed=42, engine_fail=0.3):
        ...run simulation...   # retries/fallbacks counted in repro.obs

or, from the bench CLI::

    python -m repro.bench fig7 --faults seed=42,engine_fail=1.0 --metrics m.json
"""

from repro.faults.corrupt import corrupt_buffer, flip_bits, truncate
from repro.faults.plan import (
    NO_FAULT,
    NULL_PLAN,
    FaultConfig,
    FaultDecision,
    FaultPlan,
    NullFaultPlan,
    get_fault_plan,
    injecting,
    parse_fault_spec,
    set_fault_plan,
)
from repro.faults.policy import (
    PHASE_RETRY,
    EngineFallback,
    RetryPolicy,
    engine_job_with_retry,
)
from repro.faults.workers import (
    WorkerKill,
    WorkerKillSchedule,
    worker_kill_process,
)

__all__ = [
    # plan
    "FaultConfig",
    "FaultDecision",
    "FaultPlan",
    "NullFaultPlan",
    "NO_FAULT",
    "NULL_PLAN",
    "get_fault_plan",
    "set_fault_plan",
    "injecting",
    "parse_fault_spec",
    # policy
    "RetryPolicy",
    "EngineFallback",
    "engine_job_with_retry",
    "PHASE_RETRY",
    # corruption
    "corrupt_buffer",
    "flip_bits",
    "truncate",
    # whole-worker kills
    "WorkerKill",
    "WorkerKillSchedule",
    "worker_kill_process",
]
