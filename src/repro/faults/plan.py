"""Deterministic, seeded fault plans for the DOCA/C-Engine path.

A :class:`FaultPlan` decides, per injection site, whether a simulated
hardware operation misbehaves.  Decisions are pure functions of the
plan's seed, the site name, a per-site draw counter, and the *simulated*
clock — never the wall clock — so two runs of the same experiment under
the same plan produce identical faults, traces, and outputs.

Fault kinds (paper §III-D treats the C-Engine as an unreliable
capability; this module makes the failure half of that story testable):

``engine_fail``
    A submitted job completes with a DOCA error code
    (:class:`~repro.errors.DocaJobError`) after occupying the engine for
    a fraction of its nominal duration.
``engine_stall``
    The job holds the engine ``stall_factor`` times longer than nominal
    and then surfaces as :class:`~repro.errors.DocaTimeoutError`.
``engine_degrade``
    The job completes, but ``degrade_factor`` times slower.
``corrupt_output``
    The job "completes" but the returned buffer is corrupted (bit flips
    or truncation); the caller's checksum layer detects the damage.
``init_fail``
    DOCA session bring-up fails (:class:`~repro.errors.DocaInitError`).

The module-level plan mirrors the :mod:`repro.obs` idiom: a no-op
:data:`NULL_PLAN` by default, installed globally with
:func:`set_fault_plan` or scoped with :func:`injecting`.  With no plan
installed — or a plan whose probabilities are all zero — every hook is
a provable no-op: no extra simulation events, draws that change
nothing, identical sim-time and bytes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields, replace

from repro.obs.metrics import get_metrics

__all__ = [
    "FaultConfig",
    "FaultDecision",
    "FaultPlan",
    "NullFaultPlan",
    "NO_FAULT",
    "NULL_PLAN",
    "get_fault_plan",
    "set_fault_plan",
    "injecting",
    "parse_fault_spec",
]

# Decision kinds for engine jobs.
KIND_NONE = "none"
KIND_FAIL = "fail"
KIND_STALL = "stall"
KIND_DEGRADE = "degrade"


@dataclass(frozen=True)
class FaultConfig:
    """Probabilities and severity knobs of one fault plan.

    Probabilities are per-event: each engine job draws once against
    ``engine_fail``/``engine_stall``/``engine_degrade`` (mutually
    exclusive, so their sum must be <= 1), each engine job output draws
    independently against ``corrupt_output``, and each session bring-up
    draws against ``init_fail``.
    """

    seed: int = 0
    engine_fail: float = 0.0
    engine_stall: float = 0.0
    engine_degrade: float = 0.0
    corrupt_output: float = 0.0
    init_fail: float = 0.0
    # Severity knobs.
    stall_factor: float = 8.0       # stalled job holds the engine N x longer
    degrade_factor: float = 4.0     # degraded job runs N x slower
    fail_latency_fraction: float = 0.5  # engine time burned before a failure
    max_corrupt_bits: int = 8       # bit flips per corruption event

    def __post_init__(self) -> None:
        for name in ("engine_fail", "engine_stall", "engine_degrade",
                     "corrupt_output", "init_fail"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} probability {p} outside [0, 1]")
        if self.engine_fail + self.engine_stall + self.engine_degrade > 1.0:
            raise ValueError(
                "engine_fail + engine_stall + engine_degrade must be <= 1"
            )
        if self.stall_factor < 1.0 or self.degrade_factor < 1.0:
            raise ValueError("stall_factor and degrade_factor must be >= 1")
        if not 0.0 <= self.fail_latency_fraction <= 1.0:
            raise ValueError("fail_latency_fraction outside [0, 1]")
        if self.max_corrupt_bits < 1:
            raise ValueError("max_corrupt_bits must be >= 1")

    @property
    def any_nonzero(self) -> bool:
        return any(
            getattr(self, name) > 0.0
            for name in ("engine_fail", "engine_stall", "engine_degrade",
                         "corrupt_output", "init_fail")
        )


@dataclass(frozen=True)
class FaultDecision:
    """Outcome of one engine-job draw."""

    kind: str = KIND_NONE  # none | fail | stall | degrade
    factor: float = 1.0    # time multiplier for stall/degrade
    code: int = 0          # DOCA error code for fail

    @property
    def is_fault(self) -> bool:
        return self.kind != KIND_NONE


NO_FAULT = FaultDecision()


class FaultPlan:
    """Seeded fault decisions, deterministic per (seed, site, draw#, sim time)."""

    active = True

    def __init__(self, config: "FaultConfig | None" = None, **kwargs) -> None:
        if config is None:
            config = FaultConfig(**kwargs)
        elif kwargs:
            config = replace(config, **kwargs)
        self.config = config
        self._counters: dict[str, int] = {}

    # -- deterministic randomness ------------------------------------------

    def _draw(self, site: str, now: float) -> float:
        """One uniform draw in [0, 1) for ``site`` at sim time ``now``.

        Hash-derived (BLAKE2b) rather than a shared stream so the value
        depends only on the plan seed, the site, the per-site draw
        counter, and the simulated clock — insertion of draws at one
        site can never perturb another site's sequence.
        """
        n = self._counters.get(site, 0) + 1
        self._counters[site] = n
        return self._bits(site, now, n, "p") / float(1 << 64)

    def _bits(self, site: str, now: float, n: int, tag: str) -> int:
        key = f"{self.config.seed}|{site}|{n}|{float(now).hex()}|{tag}"
        digest = hashlib.blake2b(key.encode("ascii"), digest_size=8).digest()
        return int.from_bytes(digest, "big")

    # -- injection sites ----------------------------------------------------

    def engine_job(self, device: str, algo: str, direction: str,
                   now: float) -> FaultDecision:
        """Decide the fate of one C-Engine job submission."""
        cfg = self.config
        if not (cfg.engine_fail or cfg.engine_stall or cfg.engine_degrade):
            return NO_FAULT
        site = f"cengine.{device}.{algo}.{direction}"
        u = self._draw(site, now)
        if u < cfg.engine_fail:
            decision = FaultDecision(KIND_FAIL, 1.0,
                                     code=1 + self._bits(site, now,
                                                         self._counters[site],
                                                         "code") % 7)
        elif u < cfg.engine_fail + cfg.engine_stall:
            decision = FaultDecision(KIND_STALL, cfg.stall_factor)
        elif u < cfg.engine_fail + cfg.engine_stall + cfg.engine_degrade:
            decision = FaultDecision(KIND_DEGRADE, cfg.degrade_factor)
        else:
            return NO_FAULT
        metrics = get_metrics()
        if metrics.recording:
            metrics.inc(f"faults.injected.engine_{decision.kind}")
        return decision

    def session_init(self, device: str, now: float) -> bool:
        """True when this DOCA session bring-up should fail."""
        if self.config.init_fail <= 0.0:
            return False
        failed = self._draw(f"doca.init.{device}", now) < self.config.init_fail
        if failed:
            metrics = get_metrics()
            if metrics.recording:
                metrics.inc("faults.injected.init_fail")
        return failed

    def corrupt_engine_output(self, site: str, payload: bytes,
                              now: float) -> "tuple[bytes, bool]":
        """Maybe corrupt an engine job's returned buffer.

        Returns ``(payload', corrupted)``.  Corruption is bit flips or
        truncation, chosen and placed deterministically.
        """
        cfg = self.config
        if cfg.corrupt_output <= 0.0 or not payload:
            return payload, False
        full_site = f"corrupt.{site}"
        if self._draw(full_site, now) >= cfg.corrupt_output:
            return payload, False
        from repro.faults.corrupt import corrupt_buffer

        n = self._counters[full_site]
        damaged = corrupt_buffer(
            payload,
            lambda tag: self._bits(full_site, now, n, tag),
            max_bits=cfg.max_corrupt_bits,
        )
        metrics = get_metrics()
        if metrics.recording:
            metrics.inc("faults.injected.corrupt_output")
        return damaged, True


class NullFaultPlan:
    """Disabled plan: every site reports "no fault" without drawing."""

    active = False

    def engine_job(self, device: str, algo: str, direction: str,
                   now: float) -> FaultDecision:
        return NO_FAULT

    def session_init(self, device: str, now: float) -> bool:
        return False

    def corrupt_engine_output(self, site: str, payload: bytes,
                              now: float) -> "tuple[bytes, bool]":
        return payload, False


NULL_PLAN = NullFaultPlan()

_current: "FaultPlan | NullFaultPlan" = NULL_PLAN


def get_fault_plan() -> "FaultPlan | NullFaultPlan":
    """The process-wide plan (no-op :data:`NULL_PLAN` by default)."""
    return _current


def set_fault_plan(plan: "FaultPlan | NullFaultPlan | None",
                   ) -> "FaultPlan | NullFaultPlan":
    """Install ``plan`` globally (None resets); returns the previous."""
    global _current
    previous = _current
    _current = NULL_PLAN if plan is None else plan
    return previous


class injecting:
    """``with injecting(FaultPlan(seed=7, engine_fail=0.5)):`` — scoped."""

    def __init__(self, plan: "FaultPlan | FaultConfig | None" = None,
                 **kwargs) -> None:
        if isinstance(plan, FaultConfig):
            plan = FaultPlan(plan)
        self.plan = plan if plan is not None else FaultPlan(**kwargs)
        self._previous: "FaultPlan | NullFaultPlan | None" = None

    def __enter__(self) -> FaultPlan:
        self._previous = set_fault_plan(self.plan)
        return self.plan

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_fault_plan(self._previous)
        return False


_FLOAT_FIELDS = {
    f.name for f in fields(FaultConfig) if f.type in ("float", float)
}


def parse_fault_spec(spec: str) -> FaultConfig:
    """Parse ``"seed=42,engine_fail=1.0,stall_factor=16"`` into a config.

    The bench CLI's ``--faults`` flag uses this format; unknown keys and
    malformed values raise :class:`ValueError` with the offending token.
    """
    kwargs: dict[str, "int | float"] = {}
    names = {f.name for f in fields(FaultConfig)}
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        key, sep, value = token.partition("=")
        key = key.strip()
        if not sep or key not in names:
            raise ValueError(
                f"bad fault spec token {token!r}; known keys: {sorted(names)}"
            )
        try:
            kwargs[key] = (float(value) if key in _FLOAT_FIELDS
                           else int(value))
        except ValueError:
            raise ValueError(
                f"bad fault spec value for {key!r}: {value!r}"
            ) from None
    return FaultConfig(**kwargs)
