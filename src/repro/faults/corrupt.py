"""Deterministic buffer-corruption primitives.

Models what a misbehaving DMA engine hands back: either a few flipped
bits somewhere in the output buffer, or a short write (truncation).
Every choice is driven by caller-supplied deterministic bits, so the
same plan state always produces the same damage.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["corrupt_buffer", "flip_bits", "truncate"]


def flip_bits(payload: bytes, positions: "list[int]") -> bytes:
    """Flip one bit at each absolute bit position (mod stream length)."""
    if not payload:
        return payload
    out = bytearray(payload)
    total_bits = len(out) * 8
    for pos in positions:
        pos %= total_bits
        out[pos // 8] ^= 1 << (pos % 8)
    return bytes(out)


def truncate(payload: bytes, keep: int) -> bytes:
    """Short-write: keep only the first ``keep`` bytes (at least one lost)."""
    keep = max(0, min(keep, len(payload) - 1))
    return payload[:keep]


def corrupt_buffer(payload: bytes, bits: Callable[[str], int],
                   max_bits: int = 8) -> bytes:
    """Damage ``payload`` deterministically.

    ``bits(tag)`` must return a 64-bit integer that is a pure function
    of the fault plan's state and ``tag``.  Half the time the buffer
    gets 1..``max_bits`` bit flips; the other half it is truncated.
    The result is guaranteed to differ from the input.
    """
    if not payload:
        return payload
    if len(payload) > 1 and bits("mode") % 2:
        return truncate(payload, bits("keep") % len(payload))
    n_flips = 1 + bits("nflips") % max_bits
    # Deduplicate positions: flipping the same bit twice would cancel.
    positions = sorted(
        {bits(f"bit{i}") % (len(payload) * 8) for i in range(n_flips)}
    )
    return flip_bits(payload, positions)
