"""Bounded-depth, pipelined work-queue scheduler for C-Engine jobs.

One engine job has three stages, each on a different simulated
resource, so consecutive jobs overlap like an assembly line:

* **map** (``sched.map``) — allocate + DMA-register the job's buffer
  (the per-byte registration cost of :mod:`repro.doca.buffers`).  The
  scheduler keeps a small double-buffered *ring* of mapped buffers:
  only the first ``ring_buffers`` jobs pay the map cost, later jobs
  reuse a drained ring slot for free (or the caller supplies a PEDAL
  :class:`~repro.core.mempool.MemoryPool` and hits it instead).
* **exec** (``sched.exec``) — the C-Engine job itself
  (:meth:`~repro.dpu.cengine.CEngine.submit`); the engine's single-
  server FIFO serialises this stage, so exec time is the pipeline's
  steady-state bottleneck.
* **drain** (``sched.drain``) — completion handling: the output CRC is
  verified on an SoC core (the wire formats' checksum layer standing in
  for the DOCA job-completion CRC), overlapping the next job's exec.

Admission is bounded by ``depth`` queue slots
(:class:`~repro.sim.resources.Resource`): at most ``depth`` jobs are
in flight, the rest wait FIFO — ZipLine-style bounded queueing rather
than unbounded batching.

Fault interplay (:mod:`repro.faults`): a failed or stalled engine job
**releases its queue slot** before backing off, so other jobs keep the
pipeline busy during the wait; the retry then *re-enters* the pipeline
through a fresh slot request.  Once the retry budget is exhausted the
job is work-stolen by the SoC (``soc_fallback=True``, the PEDAL
capability-fallback mirror) or the final DOCA error propagates
(``soc_fallback=False``, raw-SDK semantics).  Output bytes never depend
on scheduling: payloads flow through untouched (corrupted engine output
is detected at drain and re-executed), so pipelined runs are
byte-identical to serial (``depth=1``) runs — only the sim clock
improves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator, Iterable, Sequence

from repro.dpu.specs import Algo, Direction
from repro.errors import DocaCapabilityError, DocaTransientError
from repro.faults.plan import get_fault_plan
from repro.faults.policy import RetryPolicy, backoff_wait
from repro.obs import device_span, get_metrics
from repro.obs.metrics import RETRY_ATTEMPT_BUCKETS
from repro.sim import Resource, Store, TimeBreakdown
from repro.util.checksums import crc32

if TYPE_CHECKING:
    from repro.core.mempool import MemoryPool
    from repro.dpu.device import BlueFieldDPU
    from repro.sim.engine import Process

__all__ = [
    "SchedConfig",
    "EngineJob",
    "JobOutcome",
    "JobTicket",
    "PipelineScheduler",
]

# Breakdown phase names (per stage, mirrored onto the stage spans).
PHASE_MAP = "sched_map"
PHASE_EXEC = "sched_exec"
PHASE_DRAIN = "sched_drain"


@dataclass(frozen=True)
class SchedConfig:
    """Pipeline shape and failure policy."""

    depth: int = 2                 # queue slots: max jobs in flight
    ring_buffers: int | None = None  # mapped-buffer ring; default depth + 1
    drain_verify: bool = True      # CRC-verify outputs on an SoC core
    soc_fallback: bool = True      # work-steal exhausted jobs to the SoC
    # Steal jobs the repro.select cost model prices cheaper on an SoC
    # core than on the engine (tiny jobs dominated by the fixed job
    # overhead), instead of only stealing on capability/retry grounds.
    cost_aware_steal: bool = False
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError("depth must be >= 1")
        if self.ring_buffers is not None and self.ring_buffers < 1:
            raise ValueError("ring_buffers must be >= 1")

    @property
    def ring_size(self) -> int:
        # depth + 1 gives classic double buffering at depth 1: one
        # buffer in exec/drain while the next job maps into the other.
        return self.ring_buffers if self.ring_buffers is not None else self.depth + 1


@dataclass(frozen=True)
class EngineJob:
    """One unit of work for the pipeline.

    ``sim_bytes`` is the size the *C-Engine* ingests: uncompressed
    bytes on the compress direction, compressed bytes on decompress
    (the engine reads the compressed stream).  When the two domains
    differ — decompress jobs — ``soc_sim_bytes`` carries the
    uncompressed size, which is the SoC cost-model convention; the
    work-steal lane and the drain CRC (both of which touch the
    *decompressed* bytes) bill against it.
    """

    algo: Algo
    direction: Direction
    sim_bytes: float
    payload: bytes | None = None  # real output bytes (drain CRC-verifies them)
    tag: object = None            # caller's correlation key
    # Uncompressed size for decompress jobs (None = same as sim_bytes).
    soc_sim_bytes: float | None = None

    def __post_init__(self) -> None:
        if self.sim_bytes < 0:
            raise ValueError(f"negative job size {self.sim_bytes}")
        if self.soc_sim_bytes is not None and self.soc_sim_bytes < 0:
            raise ValueError(f"negative SoC job size {self.soc_sim_bytes}")

    @property
    def soc_bytes(self) -> float:
        """Bytes an SoC core processes for this job (uncompressed)."""
        return self.sim_bytes if self.soc_sim_bytes is None else self.soc_sim_bytes


@dataclass
class JobOutcome:
    """Everything the scheduler learned about one completed job."""

    index: int
    tag: object
    engine: str                   # "cengine" | "soc"
    attempts: int                 # engine submissions (0 on a pure SoC job)
    submitted_at: float
    completed_at: float
    breakdown: TimeBreakdown
    payload: bytes | None

    @property
    def seconds(self) -> float:
        return self.completed_at - self.submitted_at

    @property
    def exec_seconds(self) -> float:
        return self.breakdown.get(PHASE_EXEC)


class JobTicket:
    """Handle to an in-flight pipeline job (awaitable from any process)."""

    __slots__ = ("index", "job", "_proc")

    def __init__(self, index: int, job: EngineJob, proc: "Process") -> None:
        self.index = index
        self.job = job
        self._proc = proc

    @property
    def event(self) -> "Process":
        """The completion event (fires with the :class:`JobOutcome`)."""
        return self._proc

    @property
    def done(self) -> bool:
        return self._proc.processed

    def wait(self) -> Generator:
        """Yield until the job completes; returns its :class:`JobOutcome`."""
        outcome = yield self._proc
        return outcome


class _RingBuffer:
    """One reusable DMA-mapped slot of the scheduler's buffer ring."""

    __slots__ = ("capacity",)

    def __init__(self, capacity: float) -> None:
        self.capacity = capacity


class PipelineScheduler:
    """Pipelined job execution against one device's C-Engine."""

    def __init__(
        self,
        device: "BlueFieldDPU",
        config: SchedConfig | None = None,
        pool: "MemoryPool | None" = None,
        metrics=None,
    ) -> None:
        self.device = device
        self.config = config or SchedConfig()
        self.pool = pool
        # Optional per-worker registry (fleet telemetry): when set, this
        # scheduler reports there instead of the process-wide registry.
        self._metrics_override = metrics
        self._slots = Resource(device.env, capacity=self.config.depth,
                               obs_name="sched")
        self._ring: Store = Store(device.env)
        self._ring_mapped = 0
        self._submitted = 0
        self.jobs_completed = 0
        self.jobs_stolen = 0  # work-stolen to the SoC
        self._selector = None  # lazy PathSelector (cost_aware_steal)

    def _metrics(self):
        """The registry this scheduler reports into: its own labeled
        per-worker registry when one was injected, else the global."""
        if self._metrics_override is not None:
            return self._metrics_override
        return get_metrics()

    @property
    def selector(self):
        """The device's :class:`~repro.select.PathSelector` (lazy)."""
        if self._selector is None:
            from repro.select import PathSelector

            self._selector = PathSelector(self.device)
        return self._selector

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, job: EngineJob) -> JobTicket:
        """Enter one job into the pipeline; returns its ticket.

        Raises :class:`~repro.errors.DocaCapabilityError` immediately if
        the device cannot run the job and SoC fallback is disabled.
        """
        if not self.config.soc_fallback and not self.device.cengine.supports(
            job.algo, job.direction
        ):
            raise DocaCapabilityError(
                f"{self.device.name} C-Engine does not support "
                f"{job.algo.value} {job.direction.value} "
                "(and soc_fallback is disabled)"
            )
        index = self._submitted
        self._submitted += 1
        proc = self.device.env.process(
            self._run(index, job), name=f"sched:{self.device.name}:{index}"
        )
        return JobTicket(index, job, proc)

    def submit_many(self, jobs: Iterable[EngineJob]) -> Generator:
        """Pipeline a batch; returns :class:`JobOutcome` list in job order."""
        tickets = [self.submit(job) for job in jobs]
        if not tickets:
            return []
        outcomes = yield self.device.env.all_of([t.event for t in tickets])
        return outcomes

    @property
    def in_flight(self) -> int:
        return self._slots.in_use

    @property
    def queued(self) -> int:
        return self._slots.queue_length

    # ------------------------------------------------------------------
    # The pipeline itself
    # ------------------------------------------------------------------

    def _run(self, index: int, job: EngineJob) -> Generator:
        env = self.device.env
        breakdown = TimeBreakdown()
        submitted_at = env.now
        metrics = self._metrics()
        if metrics.recording:
            metrics.inc("sched.jobs")

        if not self.device.cengine.supports(job.algo, job.direction):
            # Capability-matrix reject: the SoC steals the job outright.
            yield from self._soc_lane(index, job, breakdown, attempts=0,
                                      reason="capability")
            return self._finish(index, job, "soc", 0, submitted_at, breakdown)

        if self.config.cost_aware_steal and self.selector.job_engine(
            job.algo, job.direction, job.sim_bytes, job.soc_bytes
        ) == "soc":
            # The calibrated cost model prices this job cheaper on an
            # SoC core (the fixed engine-job overhead dominates tiny
            # jobs) — steal it up front rather than occupy the queue.
            yield from self._soc_lane(index, job, breakdown, attempts=0,
                                      reason="cost_model")
            return self._finish(index, job, "soc", 0, submitted_at, breakdown)

        policy = self.config.retry
        attempts = 0
        while True:
            attempts += 1
            slot = self._slots.request()
            yield slot
            self._note_occupancy(metrics)
            buf = None
            failure: DocaTransientError | str | None = None
            try:
                buf = yield from self._map_stage(index, job, breakdown)
                try:
                    with device_span(
                        "sched.exec", self.device,
                        job=index, attempt=attempts,
                        algo=job.algo.value, direction=job.direction.value,
                        bytes=job.sim_bytes,
                    ) as span:
                        seconds = yield from self.device.cengine.submit(
                            job.algo, job.direction, job.sim_bytes
                        )
                    breakdown.add(PHASE_EXEC, seconds)
                except DocaTransientError as exc:
                    # Time the engine burned before failing still counts
                    # against this job's exec stage.
                    if exc.sim_seconds > 0:
                        breakdown.add(PHASE_EXEC, exc.sim_seconds)
                    failure = exc
                else:
                    clean = yield from self._drain_stage(index, job, breakdown)
                    if not clean:
                        failure = "output corruption detected at drain"
            finally:
                # The slot (and ring buffer) frees before any backoff
                # wait: a stalled/failed job must not starve the queue.
                if buf is not None:
                    self._release_buffer(buf)
                self._slots.release(slot)
                self._note_occupancy(metrics)

            if failure is None:
                return self._finish(
                    index, job, "cengine", attempts, submitted_at, breakdown
                )

            if metrics.recording:
                metrics.inc("sched.retries")
                metrics.observe("faults.attempts", float(attempts),
                                RETRY_ATTEMPT_BUCKETS)
            if attempts >= policy.max_attempts:
                if not self.config.soc_fallback:
                    if isinstance(failure, DocaTransientError):
                        raise failure
                    raise DocaTransientError(failure)
                yield from self._soc_lane(index, job, breakdown,
                                          attempts=attempts, reason="retry_budget")
                return self._finish(
                    index, job, "soc", attempts, submitted_at, breakdown
                )
            # Retry re-enters the pipeline: backoff outside the slot,
            # then loop back to a fresh slot request.
            yield from backoff_wait(self.device, policy, attempts, breakdown)

    # -- stages -----------------------------------------------------------

    def _map_stage(self, index: int, job: EngineJob,
                   breakdown: TimeBreakdown) -> Generator:
        """Acquire a DMA-mapped buffer big enough for the job."""
        device = self.device
        t0 = device.env.now
        with device_span(
            "sched.map", device, job=index, bytes=job.sim_bytes,
        ) as span:
            if self.pool is not None:
                buf = yield from self.pool.acquire()
                span.set_attr("source", "mempool")
            elif self._ring_mapped < self.config.ring_size and not len(self._ring):
                # Cold ring slot: pay the full allocation + registration
                # cost (the naive per-op "buffer preparation" of Fig. 7).
                self._ring_mapped += 1
                seconds = (
                    device.memory.alloc_time(job.sim_bytes)
                    + device.memory.dma_map_time(job.sim_bytes)
                )
                yield device.env.timeout(seconds)
                buf = _RingBuffer(job.sim_bytes)
                span.set_attr("source", "ring_map")
            else:
                buf = yield self._ring.get()
                if buf.capacity < job.sim_bytes:
                    # Undersized slot: re-register at the larger size.
                    seconds = (
                        device.memory.alloc_time(job.sim_bytes)
                        + device.memory.dma_map_time(job.sim_bytes)
                    )
                    yield device.env.timeout(seconds)
                    buf.capacity = job.sim_bytes
                    span.set_attr("source", "ring_grow")
                else:
                    span.set_attr("source", "ring_reuse")
        breakdown.add(PHASE_MAP, device.env.now - t0)
        return buf

    def _release_buffer(self, buf) -> None:
        if self.pool is not None:
            self.pool.release(buf)
        else:
            self._ring.put(buf)

    def _drain_stage(self, index: int, job: EngineJob,
                     breakdown: TimeBreakdown) -> Generator:
        """Completion handling; returns False when the output failed CRC."""
        if not self.config.drain_verify:
            return True
        device = self.device
        # CRC runs over the job's *output* bytes: the uncompressed side
        # for decompress jobs (soc_bytes), sim_bytes otherwise.
        verify = device.soc.checksum_time(job.soc_bytes)
        with device_span(
            "sched.drain", device, job=index, bytes=job.sim_bytes,
        ) as span:
            yield from device.soc.run(verify)
            breakdown.add(PHASE_DRAIN, verify)
            if job.payload is None:
                return True
            plan = get_fault_plan()
            if not plan.active:
                return True
            damaged, corrupted = plan.corrupt_engine_output(
                f"{device.name}.{job.algo.value}.{job.direction.value}",
                job.payload, device.env.now,
            )
            if not corrupted or crc32(damaged) == crc32(job.payload):
                return True
            span.set_attr("fault", "corrupt_output")
            metrics = self._metrics()
            if metrics.recording:
                metrics.inc("faults.corruptions_detected")
        return False

    def _soc_lane(self, index: int, job: EngineJob, breakdown: TimeBreakdown,
                  attempts: int, reason: str) -> Generator:
        """Work-steal: run the job on an SoC core instead."""
        device = self.device
        metrics = self._metrics()
        if metrics.recording:
            metrics.inc("sched.soc_steals")
        self.jobs_stolen += 1
        # SoC codec throughputs are calibrated against uncompressed
        # bytes in both directions — bill the stolen job accordingly.
        seconds = device.soc.codec_time(job.algo, job.direction, job.soc_bytes)
        with device_span(
            "sched.exec", self.device,
            job=index, engine="soc", steal_reason=reason,
            algo=job.algo.value, direction=job.direction.value,
            bytes=job.sim_bytes,
        ):
            yield from device.soc.run(seconds)
        breakdown.add(PHASE_EXEC, seconds)

    # -- bookkeeping ------------------------------------------------------

    def _note_occupancy(self, metrics) -> None:
        if metrics.recording:
            metrics.set_gauge("sched.occupancy", float(self._slots.in_use))

    def _finish(self, index: int, job: EngineJob, engine: str, attempts: int,
                submitted_at: float, breakdown: TimeBreakdown) -> JobOutcome:
        self.jobs_completed += 1
        metrics = self._metrics()
        if metrics.recording:
            metrics.inc(f"sched.completed.{engine}")
        return JobOutcome(
            index=index,
            tag=job.tag,
            engine=engine,
            attempts=attempts,
            submitted_at=submitted_at,
            completed_at=self.device.env.now,
            breakdown=breakdown,
            payload=job.payload,
        )
