"""EDPC-style decoupled model/coder pipeline on the SoC core pool.

The ``ac`` codec (:mod:`repro.algorithms.ac`) is two pure stages:
chunk-vectorized context modeling and byte-serial range coding, with a
bounded batch queue between them.  This module is the simulated-hardware
twin of that dataflow: the model stage and the coder stage run as
separate processes on the SoC's ARM core pool
(:class:`~repro.dpu.soc.Soc`), each chunk's
:class:`~repro.algorithms.ac.CodingBatch` crossing a bounded queue —
exactly the shape EDPC uses to keep its entropy coder fed by a
batched probability model.

Because the model adapts only at chunk boundaries, batch *k* never
depends on the coder's output, so the model may run up to
``queue_depth`` chunks ahead.  With at least two SoC cores the stages
overlap and the pipelined makespan approaches
``max(model_total, coder_total)`` instead of their sum; with one core or
one chunk it degenerates to the serial time, never worse.  The split of
the calibrated ``ac`` codec time between the stages is
:data:`~repro.dpu.calibration.AC_MODEL_FRACTION`.

Byte production is delegated to the real codec: the pipelined sim path
runs :func:`~repro.algorithms.ac.ac_compress_pipelined` and the serial
path :func:`~repro.algorithms.ac.ac_compress`, so tests and the
``edpc`` bench can assert the decoupling changes *when* work happens,
never *what* bytes are produced.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generator

from repro.algorithms.ac import (
    ACConfig,
    DEFAULT_CONFIG,
    ac_compress,
    ac_compress_pipelined,
)
from repro.dpu.calibration import AC_MODEL_FRACTION
from repro.dpu.device import BlueFieldDPU
from repro.dpu.specs import Algo, Direction
from repro.obs import device_span, get_logger
from repro.sim import AllOf, Resource, Store

__all__ = ["DecoupledConfig", "DecoupledResult", "DecoupledCodecPipeline"]

log = get_logger("sched")


@dataclass(frozen=True)
class DecoupledConfig:
    """Knobs for the two-stage pipeline."""

    #: Maximum number of coding batches the model stage may run ahead.
    queue_depth: int = 2
    #: Fraction of the calibrated ``ac`` codec time spent modeling.
    model_fraction: float = AC_MODEL_FRACTION
    #: Codec operating point (defines the chunk size = batch unit).
    ac: ACConfig = DEFAULT_CONFIG

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if not 0.0 < self.model_fraction < 1.0:
            raise ValueError("model_fraction must be in (0, 1)")


@dataclass(frozen=True)
class DecoupledResult:
    """Outcome of one pipelined (or serial) ``ac`` compression run."""

    payload: "bytes | None"  # real codec output (None for sim-only runs)
    sim_seconds: float  # makespan on the simulated clock
    model_seconds: float  # total model-stage work (not makespan)
    coder_seconds: float  # total coder-stage work (not makespan)
    n_chunks: int
    pipelined: bool
    queue_depth: int


class DecoupledCodecPipeline:
    """Drive ``ac`` compression as two overlapped SoC stages."""

    def __init__(
        self, device: BlueFieldDPU, config: "DecoupledConfig | None" = None
    ) -> None:
        self.device = device
        self.config = config or DecoupledConfig()
        self.env = device.env
        self.soc = device.soc

    # -- stage timing ------------------------------------------------------

    def stage_seconds(self, sim_bytes: float) -> "tuple[float, float, int]":
        """(model_total, coder_total, n_chunks) for a message."""
        total = self.soc.codec_time(Algo.AC, Direction.COMPRESS, sim_bytes)
        model = total * self.config.model_fraction
        n_chunks = max(1, math.ceil(sim_bytes / self.config.ac.chunk_bytes))
        return model, total - model, n_chunks

    # -- execution ---------------------------------------------------------

    def run(
        self,
        sim_bytes: float,
        data: "bytes | None" = None,
        pipelined: bool = True,
    ) -> Generator:
        """Simulate one compression; returns a :class:`DecoupledResult`.

        ``data`` (optional) is compressed for real with the matching
        dataflow — :func:`ac_compress_pipelined` when ``pipelined``,
        :func:`ac_compress` otherwise — so byte-identity between the
        two paths is a property of the codec, asserted by tests, not
        assumed here.  Only compression decouples: the decode-side
        model needs chunk *k*'s decoded bytes before it can rank chunk
        *k+1*, so there is no decompress variant.
        """
        model_total, coder_total, n_chunks = self.stage_seconds(sim_bytes)
        payload = None
        if data is not None:
            if pipelined:
                payload = ac_compress_pipelined(
                    data, self.config.ac, queue_depth=self.config.queue_depth
                )
            else:
                payload = ac_compress(data, self.config.ac)
        started = self.env.now
        with device_span(
            "sched.decoupled",
            self.device,
            sim_bytes=sim_bytes,
            n_chunks=n_chunks,
            pipelined=pipelined,
        ):
            if pipelined:
                yield from self._run_pipelined(model_total, coder_total, n_chunks)
            else:
                yield from self._run_serial(model_total, coder_total, n_chunks)
        elapsed = self.env.now - started
        log.debug(
            "decoupled ac compress: %d chunks %s makespan=%.6fs",
            n_chunks, "pipelined" if pipelined else "serial", elapsed,
        )
        return DecoupledResult(
            payload=payload,
            sim_seconds=elapsed,
            model_seconds=model_total,
            coder_seconds=coder_total,
            n_chunks=n_chunks,
            pipelined=pipelined,
            queue_depth=self.config.queue_depth,
        )

    def _run_serial(
        self, model_total: float, coder_total: float, n_chunks: int
    ) -> Generator:
        """Single-stage baseline: model then code each chunk on one core."""
        per_model = model_total / n_chunks
        per_coder = coder_total / n_chunks
        for _ in range(n_chunks):
            yield from self.soc.run(per_model + per_coder)

    def _run_pipelined(
        self, model_total: float, coder_total: float, n_chunks: int
    ) -> Generator:
        """Model and coder stages as concurrent SoC processes.

        The bounded queue is a Store plus a slot Resource: the model
        acquires a slot before producing a batch and the coder releases
        it once the batch is fully coded, so at most ``queue_depth``
        batches are in flight between the stages.
        """
        env = self.env
        queue = Store(env)
        slots = Resource(env, capacity=self.config.queue_depth)
        per_model = model_total / n_chunks
        per_coder = coder_total / n_chunks

        def model_stage() -> Generator:
            for index in range(n_chunks):
                req = slots.request()
                yield req
                yield from self.soc.run(per_model)
                queue.put((index, req))

        def coder_stage() -> Generator:
            for _ in range(n_chunks):
                index, req = yield queue.get()
                yield from self.soc.run(per_coder)
                slots.release(req)

        producer = env.process(model_stage())
        consumer = env.process(coder_stage())
        yield AllOf(env, [producer, consumer])
