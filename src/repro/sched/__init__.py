"""``repro.sched`` — pipelined C-Engine work-queue scheduling.

The paper's PEDAL library hides DOCA overhead by keeping the C-Engine
busy: jobs sit in a work queue and their three stages — buffer mapping
(DMA registration), engine execution, and result drain/CRC verify —
overlap across jobs.  :class:`PipelineScheduler` reproduces that design
on the DES kernel with a bounded-depth slot queue and a double-buffered
ring of DMA-mapped buffers, so a stream of chunk jobs saturates the
engine instead of paying ``map + exec + drain`` serially per chunk.

:mod:`repro.sched.decoupled` carries the EDPC-style variant for the
``ac`` codec: instead of overlapping *jobs* across engine stages, it
overlaps the codec's own probability-model and entropy-coder stages on
the SoC core pool with a bounded batch queue between them.

Public API
----------
:class:`SchedConfig`, :class:`EngineJob`, :class:`JobOutcome`,
:class:`JobTicket`, :class:`PipelineScheduler` from
:mod:`repro.sched.pipeline`; :class:`DecoupledConfig`,
:class:`DecoupledResult`, :class:`DecoupledCodecPipeline` from
:mod:`repro.sched.decoupled`.
"""

from repro.sched.decoupled import (
    DecoupledCodecPipeline,
    DecoupledConfig,
    DecoupledResult,
)
from repro.sched.pipeline import (
    EngineJob,
    JobOutcome,
    JobTicket,
    PipelineScheduler,
    SchedConfig,
)

__all__ = [
    "DecoupledCodecPipeline",
    "DecoupledConfig",
    "DecoupledResult",
    "EngineJob",
    "JobOutcome",
    "JobTicket",
    "PipelineScheduler",
    "SchedConfig",
]
