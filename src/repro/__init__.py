"""PEDAL reproduction — DPU-accelerated lossy & lossless compression.

A from-scratch reproduction of *"Accelerating Lossy and Lossless
Compression on Emerging BlueField DPU Architectures"* (IPDPS 2024):
real codecs (DEFLATE / zlib / LZ4 / SZ3) over a calibrated simulation
of the BlueField-2/3 SoC + C-Engine + DOCA + InfiniBand stack, with the
PEDAL unified compression library and its MPICH co-design on top.

Top-level convenience re-exports cover the main entry points; each
subpackage's docstring maps its internals:

>>> from repro import Environment, make_device, PedalContext
>>> env = Environment()
>>> ctx = PedalContext(make_device(env, "bf2"))

Subpackages
-----------
``repro.algorithms``  from-scratch codecs,
``repro.sim``         discrete-event kernel,
``repro.dpu``         BlueField hardware model + calibration,
``repro.doca``        DOCA-shaped SDK simulation,
``repro.core``        the PEDAL library itself,
``repro.mpi``         simulated MPICH with the PEDAL shim,
``repro.host``        host-offload deployment scenario (paper §VI),
``repro.serve``       multi-DPU serving gateway (batching + backpressure),
``repro.stream``      chunked streaming container + feed/flush codecs,
``repro.datasets``    synthetic Table IV corpora,
``repro.bench``       experiment harness for every table/figure.
"""

from repro.algorithms.deflate import deflate_compress, deflate_decompress
from repro.algorithms.lz4 import lz4_compress, lz4_decompress
from repro.algorithms.sz3 import SZ3Config, sz3_compress, sz3_decompress
from repro.algorithms.zlib_format import zlib_compress, zlib_decompress
from repro.core import ALL_DESIGNS, CompressionDesign, PedalContext, design
from repro.cluster import ClusterConfig, ServeCluster
from repro.dpu import BLUEFIELD2, BLUEFIELD3, make_device
from repro.errors import ReproError
from repro.mpi import CommConfig, CommMode, RankContext, run_mpi
from repro.serve import ServeConfig, ServeGateway, ServeRequest
from repro.sim import Environment
from repro.stream import (
    Compressor,
    Decompressor,
    StreamConfig,
    stream_compress,
    stream_decompress,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_DESIGNS",
    "BLUEFIELD2",
    "BLUEFIELD3",
    "CommConfig",
    "CommMode",
    "CompressionDesign",
    "Compressor",
    "Decompressor",
    "Environment",
    "PedalContext",
    "RankContext",
    "ClusterConfig",
    "ReproError",
    "SZ3Config",
    "ServeCluster",
    "ServeConfig",
    "ServeGateway",
    "ServeRequest",
    "StreamConfig",
    "__version__",
    "deflate_compress",
    "deflate_decompress",
    "design",
    "lz4_compress",
    "lz4_decompress",
    "make_device",
    "run_mpi",
    "stream_compress",
    "stream_decompress",
    "sz3_compress",
    "sz3_decompress",
    "zlib_compress",
    "zlib_decompress",
]
