"""Namespaced ``repro.*`` stdlib logging, silent by default.

Every module logs through :func:`get_logger`, which hangs its logger
off the shared ``repro`` root.  Out of the box the root carries a
``NullHandler`` and propagation is off, so library users see nothing
unless they opt in — either programmatically via :func:`configure` or
by setting the ``REPRO_LOG`` environment variable before the first log
call.

``REPRO_LOG`` accepts a comma-separated spec with an optional global
level and any number of per-subsystem overrides::

    REPRO_LOG=debug                     # everything at debug
    REPRO_LOG=serve=debug,obs=warning   # only those subsystems speak
    REPRO_LOG=info,sched=debug          # info everywhere, sched louder

A subsystem name is the first path segment under ``repro`` (``serve``
maps to the ``repro.serve`` logger and all its children).  Per-
subsystem levels work both ways: they can make one subsystem *more*
verbose than the global level or mute a noisy one below it.  Unknown
level tokens are ignored (an all-unknown spec keeps the logger silent,
matching the previous behaviour).
"""

from __future__ import annotations

import logging
import os
import sys

__all__ = ["get_logger", "configure", "parse_spec", "ENV_VAR"]

ENV_VAR = "REPRO_LOG"
_ROOT_NAME = "repro"
_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "warn": logging.WARNING,
    "error": logging.ERROR,
}

_configured = False
# Child loggers whose levels the last configure() set (reset on force).
_child_overrides: list[str] = []


def parse_spec(spec: str) -> "tuple[int | None, dict[str, int]]":
    """Parse a ``REPRO_LOG`` spec into (global level, per-subsystem).

    Returns ``(None, {})`` for an empty/unrecognised spec.  Subsystem
    keys keep their given dotted path (``mpi.protocol`` is allowed) —
    normalisation under the ``repro`` root happens in
    :func:`configure`.
    """
    global_level: "int | None" = None
    per_subsystem: dict[str, int] = {}
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" in item:
            subsystem, _, level_name = item.partition("=")
            subsystem = subsystem.strip()
            resolved = _LEVELS.get(level_name.strip().lower())
            if subsystem and resolved is not None:
                per_subsystem[subsystem] = resolved
        else:
            resolved = _LEVELS.get(item.lower())
            if resolved is not None:
                global_level = resolved
    return global_level, per_subsystem


def _child_name(subsystem: str) -> str:
    if subsystem == _ROOT_NAME or subsystem.startswith(_ROOT_NAME + "."):
        return subsystem
    return f"{_ROOT_NAME}.{subsystem}"


def configure(level: "str | int | None" = None, *, force: bool = False,
              stream=None) -> logging.Logger:
    """Set up the ``repro`` root logger; idempotent unless ``force``.

    ``level`` may be an int, a level name, or a full per-subsystem spec
    string (same grammar as :data:`ENV_VAR`); ``None`` reads the
    environment variable.  An unset/empty/unrecognised spec keeps the
    logger silent (``NullHandler`` only).
    """
    global _configured
    root = logging.getLogger(_ROOT_NAME)
    if _configured and not force:
        return root
    for handler in list(root.handlers):
        root.removeHandler(handler)
    for name in _child_overrides:
        logging.getLogger(name).setLevel(logging.NOTSET)
    _child_overrides.clear()
    root.propagate = False

    if level is None:
        level = os.environ.get(ENV_VAR, "")
    if isinstance(level, str):
        global_level, per_subsystem = parse_spec(level)
    else:
        global_level, per_subsystem = level, {}

    if global_level is None and not per_subsystem:
        root.addHandler(logging.NullHandler())
        root.setLevel(logging.WARNING)
    else:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(
            logging.Formatter("[%(name)s] %(levelname)s %(message)s")
        )
        root.addHandler(handler)
        # With only per-subsystem overrides given, everything else
        # stays at the conservative default.
        root.setLevel(logging.WARNING if global_level is None
                      else global_level)
        for subsystem, sub_level in per_subsystem.items():
            name = _child_name(subsystem)
            logging.getLogger(name).setLevel(sub_level)
            _child_overrides.append(name)
    _configured = True
    return root


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` namespace (configured on first use)."""
    configure()
    if not name or name == _ROOT_NAME:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")
