"""Namespaced ``repro.*`` stdlib logging, silent by default.

Every module logs through :func:`get_logger`, which hangs its logger
off the shared ``repro`` root.  Out of the box the root carries a
``NullHandler`` and propagation is off, so library users see nothing
unless they opt in — either programmatically via :func:`configure` or
by setting the ``REPRO_LOG`` environment variable (``debug``, ``info``,
``warning``, ``error``) before the first log call.
"""

from __future__ import annotations

import logging
import os
import sys

__all__ = ["get_logger", "configure", "ENV_VAR"]

ENV_VAR = "REPRO_LOG"
_ROOT_NAME = "repro"
_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "warn": logging.WARNING,
    "error": logging.ERROR,
}

_configured = False


def configure(level: "str | int | None" = None, *, force: bool = False,
              stream=None) -> logging.Logger:
    """Set up the ``repro`` root logger; idempotent unless ``force``.

    ``level=None`` reads :data:`ENV_VAR`; an unset/empty variable keeps
    the logger silent (``NullHandler`` only).
    """
    global _configured
    root = logging.getLogger(_ROOT_NAME)
    if _configured and not force:
        return root
    for handler in list(root.handlers):
        root.removeHandler(handler)
    root.propagate = False

    if level is None:
        level = os.environ.get(ENV_VAR, "")
    if isinstance(level, str):
        resolved = _LEVELS.get(level.strip().lower())
    else:
        resolved = level
    if resolved is None:
        root.addHandler(logging.NullHandler())
        root.setLevel(logging.WARNING)
    else:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(
            logging.Formatter("[%(name)s] %(levelname)s %(message)s")
        )
        root.addHandler(handler)
        root.setLevel(resolved)
    _configured = True
    return root


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` namespace (configured on first use)."""
    configure()
    if not name or name == _ROOT_NAME:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")
