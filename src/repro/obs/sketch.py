"""Mergeable relative-error quantile sketch (DDSketch-style).

Fixed-bucket histograms (PR 1) answer "how many observations fell in
this band" but cannot answer "what is p99" with a guaranteed error, and
two histograms with different boundaries cannot be combined.  The fleet
telemetry plane (§5h in DESIGN.md) needs both: per-worker registries
that roll up into one snapshot, and tail percentiles whose error is
bounded no matter how many registries were merged.

:class:`QuantileSketch` stores counts in logarithmically-spaced buckets
keyed by an integer index.  With relative accuracy ``alpha`` the bucket
ratio is ``gamma = (1 + alpha) / (1 - alpha)``; bucket ``i`` covers the
interval ``(gamma**(i-1), gamma**i]`` and is represented by
``2 * gamma**i / (gamma + 1)``, which sits within ``alpha`` relative
error of *every* value in the bucket (the ratio to the two bucket
edges is exactly ``1 + alpha`` and ``1 - alpha``, by construction).

Properties the telemetry plane relies on:

* **determinism** — pure float/dict arithmetic, no randomness: the same
  observation sequence always produces the same sketch and the same
  quantile answers (the bench gates stay bit-for-bit);
* **mergeability** — :meth:`merge` adds bucket counts, so
  ``merge(a, b)`` is exactly the sketch of the pooled stream and the
  ``alpha`` guarantee survives any merge tree (order-independent);
* **bounded error** — :meth:`quantile` returns a value within ``alpha``
  relative error of the exact quantile of everything added.

Observations of exactly zero land in a dedicated zero bucket; negative
values go to a mirrored negative store (latencies never need it, but
merge semantics stay total).  Each sketch also retains a small,
deterministic set of *exemplars* — the largest observed values with an
optional back-link (a span index) — so a fat tail in a fleet snapshot
can be traced back to the concrete spans that caused it.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

__all__ = ["QuantileSketch", "DEFAULT_ALPHA", "EXEMPLAR_CAPACITY"]

DEFAULT_ALPHA = 0.01
# Exemplars kept per sketch: the K largest (value, link) pairs.
EXEMPLAR_CAPACITY = 8

# Values with magnitude below this collapse into the zero bucket; sim
# latencies are >= microseconds, so nothing real is ever clipped.
_MIN_TRACKED = 1e-12


class QuantileSketch:
    """Deterministic DDSketch-style sketch with exemplar retention."""

    __slots__ = (
        "alpha", "_gamma", "_log_gamma",
        "pos", "neg", "zero_count",
        "count", "sum", "min", "max",
        "exemplars",
    )

    def __init__(self, alpha: float = DEFAULT_ALPHA) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha {alpha} outside (0, 1)")
        self.alpha = alpha
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self._gamma)
        self.pos: dict[int, int] = {}
        self.neg: dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        # Sorted ascending by (value, link-repr); capped at
        # EXEMPLAR_CAPACITY, keeping the largest values (the tail).
        self.exemplars: list[tuple[float, Any]] = []

    # -- keys --------------------------------------------------------------

    def _key(self, magnitude: float) -> int:
        """Bucket index for a positive magnitude (> _MIN_TRACKED)."""
        return math.ceil(math.log(magnitude) / self._log_gamma)

    def _representative(self, key: int) -> float:
        """Representative of bucket ``key``: ``2*gamma**key / (gamma+1)``.

        For any value ``x`` in the bucket ``(gamma**(key-1), gamma**key]``
        the ratio to this representative spans exactly ``[1-alpha,
        1+alpha]`` (the arithmetic midpoint would overshoot to
        ``alpha/(1-alpha)`` at the lower edge), so the advertised bound
        is tight, not approximate."""
        return 2.0 * self._gamma ** key / (self._gamma + 1.0)

    # -- recording ---------------------------------------------------------

    def add(self, value: float, exemplar: Any = None) -> None:
        """Record one observation, optionally tagged with an exemplar
        link (e.g. a span index)."""
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot add NaN to a quantile sketch")
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        magnitude = abs(value)
        if magnitude <= _MIN_TRACKED:
            self.zero_count += 1
        elif value > 0.0:
            key = self._key(magnitude)
            self.pos[key] = self.pos.get(key, 0) + 1
        else:
            key = self._key(magnitude)
            self.neg[key] = self.neg.get(key, 0) + 1
        if exemplar is not None:
            self._note_exemplar(value, exemplar)

    def _note_exemplar(self, value: float, link: Any) -> None:
        self.exemplars.append((value, link))
        if len(self.exemplars) > EXEMPLAR_CAPACITY:
            self.exemplars.sort(key=lambda pair: (pair[0], repr(pair[1])))
            del self.exemplars[: len(self.exemplars) - EXEMPLAR_CAPACITY]

    # -- merging -----------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch in place; returns ``self``.

        Requires matching ``alpha`` (bucket grids must line up).  The
        result is bucket-exact: identical to having added both streams
        to one sketch, in any order.
        """
        if not isinstance(other, QuantileSketch):
            raise TypeError(f"cannot merge {type(other).__name__}")
        if other.alpha != self.alpha:
            raise ValueError(
                f"alpha mismatch: {self.alpha} vs {other.alpha}"
            )
        for key, n in other.pos.items():
            self.pos[key] = self.pos.get(key, 0) + n
        for key, n in other.neg.items():
            self.neg[key] = self.neg.get(key, 0) + n
        self.zero_count += other.zero_count
        self.count += other.count
        self.sum += other.sum
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        for value, link in other.exemplars:
            self._note_exemplar(value, link)
        return self

    @classmethod
    def merged(cls, sketches: "Iterable[QuantileSketch]",
               alpha: "float | None" = None) -> "QuantileSketch":
        """A fresh sketch equal to the fold of ``sketches``."""
        out: QuantileSketch | None = None
        for sketch in sketches:
            if out is None:
                out = cls(sketch.alpha if alpha is None else alpha)
            out.merge(sketch)
        return out if out is not None else cls(DEFAULT_ALPHA if alpha is None
                                              else alpha)

    # -- queries -----------------------------------------------------------

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 1], within ``alpha`` relative
        error of the exact quantile of the added stream.

        Raises :class:`ValueError` on an empty sketch (callers decide
        whether empty means NaN, 0.0, or an error — see the serve
        gateway's ``sample_count`` contract).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            raise ValueError("quantile of an empty sketch")
        # Nearest-rank on the bucketed distribution: negatives from the
        # most negative up, then zeros, then positives ascending.
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for key in sorted(self.neg, reverse=True):
            seen += self.neg[key]
            if seen >= rank:
                return min(max(-self._representative(key), self.min), self.max)
        seen += self.zero_count
        if seen >= rank:
            return 0.0
        for key in sorted(self.pos):
            seen += self.pos[key]
            if seen >= rank:
                # Clamp into the observed range: the true min/max are
                # tracked exactly and tighter than bucket bounds.
                return min(max(self._representative(key), self.min), self.max)
        return self.max  # pragma: no cover - unreachable (counts add up)

    def count_above(self, threshold: float) -> int:
        """Observations *guaranteed* above ``threshold`` (> 0).

        Bucket-granular: the bucket containing ``threshold`` is
        excluded, so the answer under-counts by at most that one
        bucket's population (``alpha`` relative in value).  The SLO
        burn-rate monitor uses this as its "bad request" counter.
        """
        if threshold <= 0.0:
            raise ValueError(f"threshold {threshold} must be positive")
        cutoff = self._key(max(threshold, _MIN_TRACKED))
        return sum(n for key, n in self.pos.items() if key > cutoff)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    # -- (de)serialisation -------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready state (bucket keys as strings, sorted)."""
        return {
            "alpha": self.alpha,
            "count": self.count,
            "sum": self.sum,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "zero": self.zero_count,
            "pos": {str(k): self.pos[k] for k in sorted(self.pos)},
            "neg": {str(k): self.neg[k] for k in sorted(self.neg)},
            "exemplars": [[v, link] for v, link in self.exemplars],
        }

    @classmethod
    def from_dict(cls, state: dict[str, Any]) -> "QuantileSketch":
        sketch = cls(state["alpha"])
        sketch.count = int(state["count"])
        sketch.sum = float(state["sum"])
        sketch.min = math.inf if state["min"] is None else float(state["min"])
        sketch.max = -math.inf if state["max"] is None else float(state["max"])
        sketch.zero_count = int(state["zero"])
        sketch.pos = {int(k): int(n) for k, n in state["pos"].items()}
        sketch.neg = {int(k): int(n) for k, n in state["neg"].items()}
        sketch.exemplars = [(float(v), link) for v, link in state["exemplars"]]
        return sketch

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"QuantileSketch(alpha={self.alpha}, count={self.count}, "
            f"buckets={len(self.pos) + len(self.neg)})"
        )
