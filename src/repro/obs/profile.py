"""Sampled codec-kernel profiler with deterministic exemplar links.

The ROADMAP's codec-vectorization item needs to know *which* kernels
burn the clock: the from-scratch codecs (LZ77 hash-chain matching,
Huffman build/emit, SZ3's Lorenzo predict/quantize) are the wall-clock
bottleneck of every experiment, and "DEFLATE is slow" is not an
actionable profile.  This module gives the runtime a zero-overhead-
when-off kernel profiler, mirroring the tracer/metrics pattern:

* instrumented kernels run under ``with get_profiler().kernel(name):``
  — a single attribute check and a shared no-op context manager when
  profiling is disabled;
* when enabled, each kernel invocation charges **wall-clock** total and
  self time to its *stack path* (e.g. ``deflate.compress →
  lz77.match_loop``), so nested kernels attribute correctly and the
  collapsed-stack exporter (:func:`repro.obs.export.write_flamegraph`)
  can render a flamegraph;
* a **seeded xorshift-free LCG** decides which invocations capture an
  exemplar — a link from the kernel sample back to the innermost open
  span of the current tracer.  The sampling decisions depend only on
  the seed and the invocation order, so a deterministic run profiles
  deterministically (sample *counts and links*; the wall-clock readings
  themselves are machine-dependent, which is why they never enter the
  bit-for-bit bench sections).

The profiler never touches the simulation: enabling it cannot move the
sim clock, and the BENCH_PR6 overhead gate holds the wall-clock cost of
the whole telemetry plane (profiler included) under 5 % on the serve
experiment.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable

__all__ = [
    "KernelStats",
    "KernelExemplar",
    "CodecProfiler",
    "NullProfiler",
    "NULL_PROFILER",
    "get_profiler",
    "set_profiler",
    "profiling",
    "DEFAULT_EXEMPLAR_PERIOD",
]

DEFAULT_EXEMPLAR_PERIOD = 16

_LCG_MULT = 6364136223846793005
_LCG_INC = 1442695040888963407
_LCG_MASK = (1 << 64) - 1


class KernelStats:
    """Accumulated cost of one stack path."""

    __slots__ = ("calls", "total_s", "self_s")

    def __init__(self) -> None:
        self.calls = 0
        self.total_s = 0.0
        self.self_s = 0.0


class KernelExemplar:
    """One sampled invocation, linked back to the active span (if any)."""

    __slots__ = ("path", "span_index", "wall_s")

    def __init__(self, path: "tuple[str, ...]", span_index: "int | None",
                 wall_s: float) -> None:
        self.path = path
        self.span_index = span_index
        self.wall_s = wall_s


class _Frame:
    """Context manager for one kernel invocation."""

    __slots__ = ("profiler", "name", "_start", "_child_s")

    def __init__(self, profiler: "CodecProfiler", name: str) -> None:
        self.profiler = profiler
        self.name = name
        self._start = 0.0
        self._child_s = 0.0

    def __enter__(self) -> "_Frame":
        self.profiler._stack.append(self)
        self._start = self.profiler._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        profiler = self.profiler
        duration = profiler._clock() - self._start
        stack = profiler._stack
        if stack and stack[-1] is self:
            stack.pop()
        else:  # tolerate out-of-order exits rather than corrupt the stack
            try:
                stack.remove(self)
            except ValueError:
                pass
        path = tuple(frame.name for frame in stack) + (self.name,)
        stats = profiler.nodes.get(path)
        if stats is None:
            stats = profiler.nodes[path] = KernelStats()
        stats.calls += 1
        stats.total_s += duration
        stats.self_s += duration - self._child_s
        if stack:
            stack[-1]._child_s += duration
        profiler._maybe_sample(path, duration)
        return False


class _NullFrame:
    """Shared no-op frame: the disabled-profiling fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullFrame":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_FRAME = _NullFrame()


class NullProfiler:
    """Disabled profiler: ``kernel()`` hands back one shared no-op."""

    recording = False

    def kernel(self, name: str) -> _NullFrame:
        return _NULL_FRAME


NULL_PROFILER = NullProfiler()


class CodecProfiler:
    """Wall-clock kernel attribution with seeded exemplar sampling.

    ``exemplar_period`` is the *average* sampling stride: roughly one
    in every ``period`` invocations captures an exemplar, chosen by a
    seeded LCG so the selection is a pure function of (seed, invocation
    order).  ``clock`` is injectable for deterministic tests.
    """

    recording = True

    def __init__(self, seed: int = 0,
                 exemplar_period: int = DEFAULT_EXEMPLAR_PERIOD,
                 clock: "Callable[[], float] | None" = None) -> None:
        if exemplar_period < 1:
            raise ValueError(f"exemplar period {exemplar_period} < 1")
        self.seed = seed
        self.exemplar_period = exemplar_period
        self.nodes: dict[tuple[str, ...], KernelStats] = {}
        self.exemplars: list[KernelExemplar] = []
        self.invocations = 0
        self._stack: list[_Frame] = []
        self._clock = clock or perf_counter
        self._lcg = (seed * _LCG_MULT + _LCG_INC) & _LCG_MASK

    def kernel(self, name: str) -> _Frame:
        """A context manager charging the enclosed work to ``name``."""
        return _Frame(self, name)

    # -- sampling ----------------------------------------------------------

    def _maybe_sample(self, path: "tuple[str, ...]", wall_s: float) -> None:
        self.invocations += 1
        self._lcg = (self._lcg * _LCG_MULT + _LCG_INC) & _LCG_MASK
        if (self._lcg >> 33) % self.exemplar_period == 0:
            self.exemplars.append(
                KernelExemplar(path, _open_span_index(), wall_s)
            )

    # -- views -------------------------------------------------------------

    def self_seconds(self, prefix: "tuple[str, ...]" = ()) -> dict[str, float]:
        """Self wall-seconds per kernel name under ``prefix`` (summed
        across distinct stack paths)."""
        totals: dict[str, float] = {}
        for path, stats in self.nodes.items():
            if prefix and path[: len(prefix)] != prefix:
                continue
            if prefix and len(path) == len(prefix):
                continue  # the prefix frame itself, not a child
            name = path[-1]
            totals[name] = totals.get(name, 0.0) + stats.self_s
        return totals

    def top_kernel(self, prefix: "tuple[str, ...]" = ()) -> "str | None":
        """The kernel with the largest self time under ``prefix``
        (ties break lexicographically for determinism)."""
        totals = self.self_seconds(prefix)
        if not totals:
            return None
        return max(sorted(totals), key=lambda name: totals[name])

    def as_records(self) -> "list[dict[str, Any]]":
        """JSON-ready per-path records, sorted by path."""
        return [
            {
                "type": "kernel",
                "path": list(path),
                "calls": stats.calls,
                "total_s": stats.total_s,
                "self_s": stats.self_s,
            }
            for path, stats in sorted(self.nodes.items())
        ]


def _open_span_index() -> "int | None":
    """Index of the innermost open span of the current tracer, if any."""
    from repro.obs.tracer import get_tracer

    tracer = get_tracer()
    if not tracer.recording:
        return None
    best = None
    for track in tracer.tracks:
        if track.stack:
            candidate = track.stack[-1]
            if best is None or candidate.index > best.index:
                best = candidate
    return None if best is None else best.index


_current: "CodecProfiler | NullProfiler" = NULL_PROFILER


def get_profiler() -> "CodecProfiler | NullProfiler":
    """The process-wide profiler (no-op :data:`NULL_PROFILER` default)."""
    return _current


def set_profiler(profiler: "CodecProfiler | NullProfiler | None",
                 ) -> "CodecProfiler | NullProfiler":
    """Install ``profiler`` globally (None resets); returns the previous."""
    global _current
    previous = _current
    _current = NULL_PROFILER if profiler is None else profiler
    return previous


class profiling:
    """``with profiling(CodecProfiler()) as p:`` — scoped installation."""

    def __init__(self, profiler: "CodecProfiler | None" = None) -> None:
        self.profiler = profiler or CodecProfiler()
        self._previous: "CodecProfiler | NullProfiler | None" = None

    def __enter__(self) -> CodecProfiler:
        self._previous = set_profiler(self.profiler)
        return self.profiler

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_profiler(self._previous)
        return False
