"""Metrics registry: counters, gauges, and sketch-backed histograms.

The registry is deliberately simulation-friendly: every recorded value
comes from the deterministic simulated world (queue depths, byte
counts, simulated seconds), and histogram bucket boundaries are fixed
at registration, so two runs of the same experiment produce identical
metric dumps — no wall-clock randomness.

Since PR 6 every :class:`Histogram` is backed by a mergeable
:class:`~repro.obs.sketch.QuantileSketch` in addition to its fixed
buckets: the bucket counts keep the stable JSONL export shape, while
``quantile()`` answers tail-percentile queries with a guaranteed
relative error and ``merge()`` combines instruments across registries
(the fleet roll-up in :mod:`repro.obs.aggregate`).

Registries may carry an immutable **label set** (``worker``,
``gateway``, ``tenant``, ``algo``, ``direction``, ``path``, or any
other key) identifying which fleet member produced them; labels are
fixed at construction and drive the group-by in the fleet aggregator.

Like the tracer, the module-level registry defaults to a no-op
(:data:`NULL_METRICS`): instrumented hot paths pay a single attribute
check and allocate nothing when collection is disabled.  Enable with
:func:`set_metrics` or the :func:`collecting` context manager.
"""

from __future__ import annotations

import itertools
import math
from bisect import bisect_left
from typing import Any, Mapping, Sequence

from repro.obs.sketch import DEFAULT_ALPHA, QuantileSketch

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "get_metrics",
    "set_metrics",
    "collecting",
    "QUEUE_DEPTH_BUCKETS",
    "SIM_SECONDS_BUCKETS",
    "BYTES_BUCKETS",
    "RETRY_ATTEMPT_BUCKETS",
]

# Shared fixed boundaries (upper-inclusive bucket edges, +inf implied).
QUEUE_DEPTH_BUCKETS: tuple[float, ...] = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
SIM_SECONDS_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)
BYTES_BUCKETS: tuple[float, ...] = (
    1024.0, 16384.0, 65536.0, 262144.0, 1048576.0, 16777216.0, 134217728.0,
)
# Failed-attempt counts per operation (fault-injection retry layer).
RETRY_ATTEMPT_BUCKETS: tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0)

# Process-wide update sequence shared by every Gauge: the fleet merge
# resolves "last write wins" by this stamp, which makes the roll-up
# independent of the order registries are merged in.
_GAUGE_SEQ = itertools.count(1)


class Counter:
    """Monotonically increasing sum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} increment {amount} < 0")
        self.value += amount

    def merge(self, other: "Counter") -> "Counter":
        """Fleet roll-up: counters sum (order-independent)."""
        self.value += other.value
        return self


class Gauge:
    """Last-set value, with observed min/max."""

    __slots__ = ("name", "value", "min", "max", "updates", "seq")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.updates = 0
        self.seq = 0  # stamp of the most recent set() (0 = never set)

    def set(self, value: float) -> None:
        self.value = value
        self.updates += 1
        self.seq = next(_GAUGE_SEQ)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "Gauge") -> "Gauge":
        """Fleet roll-up: latest write (by update stamp) wins; min/max
        and update counts pool.  Order-independent."""
        if other.seq > self.seq:
            self.value = other.value
            self.seq = other.seq
        self.updates += other.updates
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        return self


class Histogram:
    """Fixed-boundary histogram with a mergeable quantile sketch.

    ``boundaries`` are **upper-inclusive** edges: a value lands in the
    first bucket whose edge is >= the value, so a value exactly on a
    boundary deterministically belongs to that boundary's own bucket
    (``observe(2.0)`` with edges ``(1.0, 2.0, 4.0)`` counts in the
    ``<=2.0`` bucket, never the ``<=4.0`` one).  Values above the last
    edge land in the implicit **+Inf overflow bucket** — the last
    element of ``counts``, so ``len(counts) == len(boundaries) + 1`` —
    and are included in ``count``/``snapshot()`` totals like any other
    observation.  NaN observations are rejected (they have no
    deterministic bucket).

    Every observation also feeds the backing
    :class:`~repro.obs.sketch.QuantileSketch`, which answers
    :meth:`quantile` and makes histograms mergeable across registries.
    """

    __slots__ = ("name", "boundaries", "counts", "sum", "count", "sketch")

    def __init__(self, name: str, boundaries: Sequence[float],
                 alpha: float = DEFAULT_ALPHA) -> None:
        edges = tuple(float(b) for b in boundaries)
        if not edges:
            raise ValueError(f"histogram {name!r} needs at least one edge")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise ValueError(f"histogram {name!r} edges must be increasing")
        self.name = name
        self.boundaries = edges
        self.counts = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0
        self.sketch = QuantileSketch(alpha)

    def observe(self, value: float, exemplar: Any = None) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError(
                f"histogram {self.name!r} cannot observe NaN"
            )
        # bisect_left on upper-inclusive edges: an exact boundary hit
        # resolves to that edge's own bucket; anything past the last
        # edge resolves to len(boundaries) — the +Inf overflow bucket.
        self.counts[bisect_left(self.boundaries, value)] += 1
        self.sum += value
        self.count += 1
        self.sketch.add(value, exemplar=exemplar)

    def quantile(self, q: float) -> float:
        """Sketch-backed quantile (``q`` in [0, 1]) within the sketch's
        relative-error bound; raises ``ValueError`` when empty."""
        return self.sketch.quantile(q)

    def merge(self, other: "Histogram") -> "Histogram":
        """Fleet roll-up: pool bucket counts and sketches in place.

        Requires identical boundaries (the grids must line up); the
        sketches enforce their own alpha match.
        """
        if other.boundaries != self.boundaries:
            raise ValueError(
                f"histogram {self.name!r} boundary mismatch: "
                f"{self.boundaries} vs {other.boundaries}"
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.sum += other.sum
        self.count += other.count
        self.sketch.merge(other.sketch)
        return self

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready state.  ``counts`` carries every bucket including
        the trailing +Inf overflow bucket, broken out again under
        ``overflow``; ``count`` is the total across all of them."""
        return {
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "overflow": self.counts[-1],
            "sum": self.sum,
            "count": self.count,
        }

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


def _freeze_labels(labels: "Mapping[str, str] | None",
                   ) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    frozen = []
    for key in sorted(labels):
        value = labels[key]
        if not isinstance(key, str) or not isinstance(value, str):
            raise TypeError(
                f"labels must be str -> str, got {key!r}={value!r}"
            )
        frozen.append((key, value))
    return tuple(frozen)


class MetricsRegistry:
    """Name-addressed instrument store with convenience recorders.

    ``labels`` (optional) is an immutable ``str -> str`` mapping
    identifying the fleet member this registry belongs to; the fleet
    aggregator groups and merges registries by these labels.
    """

    recording = True

    def __init__(self, labels: "Mapping[str, str] | None" = None) -> None:
        self._labels = _freeze_labels(labels)
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    @property
    def labels(self) -> "tuple[tuple[str, str], ...]":
        """Immutable, sorted ``(key, value)`` pairs."""
        return self._labels

    @property
    def label_dict(self) -> dict[str, str]:
        return dict(self._labels)

    # -- instrument accessors (create on first use) ------------------------

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str,
                  boundaries: Sequence[float] = SIM_SECONDS_BUCKETS) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name, boundaries)
        return h

    # -- one-line recorders (the style instrumented code uses) -------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float,
                boundaries: Sequence[float] = SIM_SECONDS_BUCKETS,
                exemplar: Any = None) -> None:
        self.histogram(name, boundaries).observe(value, exemplar=exemplar)

    # -- export ------------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot of every instrument."""
        snapshot: dict[str, Any] = {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {
                n: {
                    "value": g.value,
                    "min": None if g.updates == 0 else g.min,
                    "max": None if g.updates == 0 else g.max,
                    "updates": g.updates,
                }
                for n, g in sorted(self.gauges.items())
            },
            "histograms": {
                n: h.snapshot() for n, h in sorted(self.histograms.items())
            },
        }
        if self._labels:
            snapshot["labels"] = self.label_dict
        return snapshot


class NullMetrics:
    """Disabled registry: every recorder is a no-op."""

    recording = False
    labels: tuple = ()

    def inc(self, name: str, amount: float = 1.0) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float,
                boundaries: Sequence[float] = (),
                exemplar: Any = None) -> None:
        pass


NULL_METRICS = NullMetrics()

_current: "MetricsRegistry | NullMetrics" = NULL_METRICS


def get_metrics() -> "MetricsRegistry | NullMetrics":
    """The process-wide registry (no-op :data:`NULL_METRICS` by default)."""
    return _current


def set_metrics(registry: "MetricsRegistry | NullMetrics | None",
                ) -> "MetricsRegistry | NullMetrics":
    """Install ``registry`` globally (None resets); returns the previous."""
    global _current
    previous = _current
    _current = NULL_METRICS if registry is None else registry
    return previous


class collecting:
    """``with collecting(MetricsRegistry()) as m:`` — scoped installation."""

    def __init__(self, registry: "MetricsRegistry | None" = None) -> None:
        self.registry = registry or MetricsRegistry()
        self._previous: "MetricsRegistry | NullMetrics | None" = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = set_metrics(self.registry)
        return self.registry

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_metrics(self._previous)
        return False
