"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is deliberately simulation-friendly: every recorded value
comes from the deterministic simulated world (queue depths, byte
counts, simulated seconds), and histogram bucket boundaries are fixed
at registration, so two runs of the same experiment produce identical
metric dumps — no wall-clock randomness.

Like the tracer, the module-level registry defaults to a no-op
(:data:`NULL_METRICS`): instrumented hot paths pay a single attribute
check and allocate nothing when collection is disabled.  Enable with
:func:`set_metrics` or the :func:`collecting` context manager.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "get_metrics",
    "set_metrics",
    "collecting",
    "QUEUE_DEPTH_BUCKETS",
    "SIM_SECONDS_BUCKETS",
    "BYTES_BUCKETS",
    "RETRY_ATTEMPT_BUCKETS",
]

# Shared fixed boundaries (upper-inclusive bucket edges, +inf implied).
QUEUE_DEPTH_BUCKETS: tuple[float, ...] = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
SIM_SECONDS_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)
BYTES_BUCKETS: tuple[float, ...] = (
    1024.0, 16384.0, 65536.0, 262144.0, 1048576.0, 16777216.0, 134217728.0,
)
# Failed-attempt counts per operation (fault-injection retry layer).
RETRY_ATTEMPT_BUCKETS: tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0)


class Counter:
    """Monotonically increasing sum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} increment {amount} < 0")
        self.value += amount


class Gauge:
    """Last-set value, with observed min/max."""

    __slots__ = ("name", "value", "min", "max", "updates")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = value
        self.updates += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value


class Histogram:
    """Fixed-boundary histogram (cumulative-free, one count per bucket).

    ``boundaries`` are upper-inclusive edges; values above the last edge
    land in the implicit overflow bucket, so ``len(counts) ==
    len(boundaries) + 1``.
    """

    __slots__ = ("name", "boundaries", "counts", "sum", "count")

    def __init__(self, name: str, boundaries: Sequence[float]) -> None:
        edges = tuple(float(b) for b in boundaries)
        if not edges:
            raise ValueError(f"histogram {name!r} needs at least one edge")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise ValueError(f"histogram {name!r} edges must be increasing")
        self.name = name
        self.boundaries = edges
        self.counts = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        idx = len(self.boundaries)
        for i, edge in enumerate(self.boundaries):
            if value <= edge:
                idx = i
                break
        self.counts[idx] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Name-addressed instrument store with convenience recorders."""

    recording = True

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- instrument accessors (create on first use) ------------------------

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str,
                  boundaries: Sequence[float] = SIM_SECONDS_BUCKETS) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name, boundaries)
        return h

    # -- one-line recorders (the style instrumented code uses) -------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float,
                boundaries: Sequence[float] = SIM_SECONDS_BUCKETS) -> None:
        self.histogram(name, boundaries).observe(value)

    # -- export ------------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot of every instrument."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {
                n: {
                    "value": g.value,
                    "min": None if g.updates == 0 else g.min,
                    "max": None if g.updates == 0 else g.max,
                    "updates": g.updates,
                }
                for n, g in sorted(self.gauges.items())
            },
            "histograms": {
                n: {
                    "boundaries": list(h.boundaries),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for n, h in sorted(self.histograms.items())
            },
        }


class NullMetrics:
    """Disabled registry: every recorder is a no-op."""

    recording = False

    def inc(self, name: str, amount: float = 1.0) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float,
                boundaries: Sequence[float] = ()) -> None:
        pass


NULL_METRICS = NullMetrics()

_current: "MetricsRegistry | NullMetrics" = NULL_METRICS


def get_metrics() -> "MetricsRegistry | NullMetrics":
    """The process-wide registry (no-op :data:`NULL_METRICS` by default)."""
    return _current


def set_metrics(registry: "MetricsRegistry | NullMetrics | None",
                ) -> "MetricsRegistry | NullMetrics":
    """Install ``registry`` globally (None resets); returns the previous."""
    global _current
    previous = _current
    _current = NULL_METRICS if registry is None else registry
    return previous


class collecting:
    """``with collecting(MetricsRegistry()) as m:`` — scoped installation."""

    def __init__(self, registry: "MetricsRegistry | None" = None) -> None:
        self.registry = registry or MetricsRegistry()
        self._previous: "MetricsRegistry | NullMetrics | None" = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = set_metrics(self.registry)
        return self.registry

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_metrics(self._previous)
        return False
