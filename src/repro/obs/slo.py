"""Per-tenant SLO monitoring with multi-window burn-rate alerts.

The fleet snapshot (:mod:`repro.obs.aggregate`) gives cumulative
per-tenant latency sketches and byte counters; this module turns them
into the sensor the ROADMAP's autoscaling goal consumes: *is tenant T
burning its error budget fast enough that something must react?*

The model is the standard multi-window burn rate.  A latency objective
says "at most ``budget_fraction`` of requests may exceed
``latency_target_s``".  Over a trailing window ``W`` ending now::

    bad_fraction(W) = bad_requests(W) / requests(W)
    burn_rate(W)    = bad_fraction(W) / budget_fraction

``burn_rate == 1`` consumes the budget exactly at the sustainable
pace; a short window at a high threshold pages fast on sharp
regressions, a long window at a low threshold catches slow burns
without flapping.  ``bad_requests`` comes from the merged sketch's
:meth:`~repro.obs.sketch.QuantileSketch.count_above` — bucket-granular,
deterministic, and mergeable across however many workers fed the
snapshot.

Windowed deltas are computed from a per-tenant history of cumulative
scrape samples, so the monitor needs nothing beyond the scrape stream:
feed it via :meth:`SloMonitor.observe` (e.g. as the ``on_scrape``
callback of :func:`~repro.obs.aggregate.scrape_process`).

Alerts are **typed events** (:class:`SloAlert`), deduplicated per
(tenant, kind, window) while the condition persists, counted on the
metrics registry (``slo.alerts``), and — when a tracer is recording —
emitted onto the trace as zero-duration ``slo.alert`` spans on a
dedicated track, so a Perfetto timeline shows exactly when each budget
blew next to the spans that blew it.

Everything is driven by the simulated clock: a seeded overload run
fires the same alerts at the same sim times, every time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

from repro.obs.metrics import get_metrics
from repro.obs.tracer import get_tracer

if TYPE_CHECKING:
    from repro.obs.aggregate import FleetSnapshot

__all__ = [
    "SloObjective",
    "BurnWindow",
    "SloAlert",
    "SloMonitor",
    "DEFAULT_WINDOWS",
    "LATENCY_METRIC",
    "GOODPUT_COUNTER",
]

# Metric names the serve layer records into tenant-labeled registries.
LATENCY_METRIC = "serve.latency_s"
GOODPUT_COUNTER = "serve.completed_sim_bytes"


@dataclass(frozen=True)
class SloObjective:
    """One tenant's objectives.

    ``latency_target_s`` + ``budget_fraction`` form the latency SLO
    ("at most ``budget_fraction`` of requests above the target");
    ``goodput_floor_bytes_s`` (optional) alerts when the tenant's
    served bytes per sim second over a window drop below the floor.
    """

    tenant: str
    latency_target_s: float
    budget_fraction: float = 0.01
    goodput_floor_bytes_s: "float | None" = None

    def __post_init__(self) -> None:
        if self.latency_target_s <= 0.0:
            raise ValueError(
                f"latency target {self.latency_target_s} must be positive"
            )
        if not 0.0 < self.budget_fraction < 1.0:
            raise ValueError(
                f"budget fraction {self.budget_fraction} outside (0, 1)"
            )


@dataclass(frozen=True)
class BurnWindow:
    """One evaluation window: trip when burn rate >= ``threshold``."""

    window_s: float
    threshold: float
    severity: str = "page"

    def __post_init__(self) -> None:
        if self.window_s <= 0.0:
            raise ValueError(f"window {self.window_s} must be positive")
        if self.threshold <= 0.0:
            raise ValueError(f"threshold {self.threshold} must be positive")


# Sim-scale defaults (serve experiments run tens of milliseconds of sim
# time): a fast/short page window and a slow/long ticket window.
DEFAULT_WINDOWS: tuple[BurnWindow, ...] = (
    BurnWindow(window_s=5e-3, threshold=10.0, severity="page"),
    BurnWindow(window_s=20e-3, threshold=2.0, severity="ticket"),
)


@dataclass(frozen=True)
class SloAlert:
    """One typed alert event."""

    tenant: str
    kind: str            # "latency_burn" | "goodput_floor"
    severity: str
    window_s: float
    fired_at_s: float    # sim time of the scrape that tripped it
    burn_rate: float     # latency: budget multiple; goodput: floor ratio
    detail: "dict[str, Any]" = field(default_factory=dict)


@dataclass
class _TenantSample:
    """Cumulative per-tenant readings at one scrape."""

    sim_now: float
    requests: int
    bad_requests: int
    bytes_total: float


class SloMonitor:
    """Evaluate objectives against the scrape stream; collect alerts."""

    def __init__(self, objectives: "Iterable[SloObjective]",
                 windows: "Iterable[BurnWindow]" = DEFAULT_WINDOWS) -> None:
        self.objectives = tuple(objectives)
        seen = set()
        for obj in self.objectives:
            if obj.tenant in seen:
                raise ValueError(f"duplicate objective for {obj.tenant!r}")
            seen.add(obj.tenant)
        self.windows = tuple(windows)
        if not self.windows:
            raise ValueError("SloMonitor needs at least one burn window")
        self.alerts: list[SloAlert] = []
        self._history: dict[str, list[_TenantSample]] = {}
        # (tenant, kind, window_s) conditions currently firing — an
        # alert re-arms only after its condition clears.
        self._active: set[tuple[str, str, float]] = set()

    # ------------------------------------------------------------------
    # Scrape intake
    # ------------------------------------------------------------------

    def observe(self, snapshot: "FleetSnapshot") -> list[SloAlert]:
        """Evaluate one fleet snapshot; returns alerts newly fired.

        The snapshot must have been grouped with ``"tenant"`` in its
        ``group_by`` (the per-tenant registries are where the latency
        sketches live).
        """
        if "tenant" not in snapshot.group_by:
            raise ValueError(
                "SloMonitor needs a snapshot grouped by 'tenant' "
                f"(got group_by={snapshot.group_by})"
            )
        tenant_axis = snapshot.group_by.index("tenant")
        fired: list[SloAlert] = []
        for obj in self.objectives:
            sample = self._sample(snapshot, tenant_axis, obj)
            history = self._history.setdefault(obj.tenant, [])
            history.append(sample)
            fired.extend(self._evaluate(obj, history))
        if fired:
            self.alerts.extend(fired)
            self._emit(fired)
        return fired

    def _sample(self, snapshot: "FleetSnapshot", tenant_axis: int,
                obj: SloObjective) -> _TenantSample:
        merged = None
        for key, registry in snapshot.groups.items():
            if key[tenant_axis] == obj.tenant:
                merged = registry
                break
        if merged is None:
            return _TenantSample(snapshot.sim_now, 0, 0, 0.0)
        hist = merged.histograms.get(LATENCY_METRIC)
        goodput = merged.counters.get(GOODPUT_COUNTER)
        return _TenantSample(
            sim_now=snapshot.sim_now,
            requests=0 if hist is None else hist.count,
            bad_requests=(
                0 if hist is None
                else hist.sketch.count_above(obj.latency_target_s)
            ),
            bytes_total=0.0 if goodput is None else goodput.value,
        )

    # ------------------------------------------------------------------
    # Window evaluation
    # ------------------------------------------------------------------

    @staticmethod
    def _at_or_before(history: "list[_TenantSample]",
                      t: float) -> _TenantSample:
        """Latest cumulative sample with ``sim_now <= t`` (zero origin
        if the window starts before the first scrape)."""
        best = _TenantSample(0.0, 0, 0, 0.0)
        for sample in history:
            if sample.sim_now <= t:
                best = sample
            else:
                break
        return best

    def _evaluate(self, obj: SloObjective,
                  history: "list[_TenantSample]") -> list[SloAlert]:
        now_sample = history[-1]
        now = now_sample.sim_now
        fired: list[SloAlert] = []
        for window in self.windows:
            base = self._at_or_before(history, now - window.window_s)
            requests = now_sample.requests - base.requests
            bad = now_sample.bad_requests - base.bad_requests
            burn = 0.0
            if requests > 0:
                burn = (bad / requests) / obj.budget_fraction
            key = (obj.tenant, "latency_burn", window.window_s)
            if burn >= window.threshold and requests > 0:
                if key not in self._active:
                    self._active.add(key)
                    fired.append(SloAlert(
                        tenant=obj.tenant,
                        kind="latency_burn",
                        severity=window.severity,
                        window_s=window.window_s,
                        fired_at_s=now,
                        burn_rate=burn,
                        detail={
                            "requests": requests,
                            "bad_requests": bad,
                            "latency_target_s": obj.latency_target_s,
                            "budget_fraction": obj.budget_fraction,
                        },
                    ))
            else:
                self._active.discard(key)

            if obj.goodput_floor_bytes_s is not None:
                span_s = now - base.sim_now
                goodput = (
                    (now_sample.bytes_total - base.bytes_total) / span_s
                    if span_s > 0.0 else 0.0
                )
                gkey = (obj.tenant, "goodput_floor", window.window_s)
                if span_s > 0.0 and goodput < obj.goodput_floor_bytes_s:
                    if gkey not in self._active:
                        self._active.add(gkey)
                        fired.append(SloAlert(
                            tenant=obj.tenant,
                            kind="goodput_floor",
                            severity=window.severity,
                            window_s=window.window_s,
                            fired_at_s=now,
                            burn_rate=(
                                goodput / obj.goodput_floor_bytes_s
                            ),
                            detail={
                                "goodput_bytes_s": goodput,
                                "floor_bytes_s": obj.goodput_floor_bytes_s,
                            },
                        ))
                else:
                    self._active.discard(gkey)
        return fired

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def _emit(self, alerts: "list[SloAlert]") -> None:
        metrics = get_metrics()
        tracer = get_tracer()
        for alert in alerts:
            if metrics.recording:
                metrics.inc("slo.alerts")
                metrics.inc(f"slo.alerts.{alert.kind}")
            if tracer.recording:
                track = tracer.track_for(self, "slo")
                with tracer.span(
                    "slo.alert", env=None, track=track,
                    attrs={
                        "cat": "slo",
                        "tenant": alert.tenant,
                        "kind": alert.kind,
                        "severity": alert.severity,
                        "window_s": alert.window_s,
                        "burn_rate": alert.burn_rate,
                        "fired_at_s": alert.fired_at_s,
                    },
                ):
                    pass

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def alerts_for(self, tenant: str) -> "list[SloAlert]":
        return [a for a in self.alerts if a.tenant == tenant]

    def as_records(self) -> "list[dict[str, Any]]":
        """JSON-ready alert dump (deterministic order of firing)."""
        return [
            {
                "type": "slo_alert",
                "tenant": a.tenant,
                "kind": a.kind,
                "severity": a.severity,
                "window_s": a.window_s,
                "fired_at_s": a.fired_at_s,
                "burn_rate": a.burn_rate,
                "detail": dict(a.detail),
            }
            for a in self.alerts
        ]
