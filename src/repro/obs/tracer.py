"""Dual-clock span tracing for the PEDAL simulation runtime.

A :class:`Span` is a named, attributed interval recorded on *both*
clocks of the reproduction (DESIGN.md, "two time domains"):

* **simulated time** — read from the owning :class:`Environment`'s
  ``now`` at span entry/exit, so a trace lays out exactly what the
  discrete-event schedule decided (queueing on the C-Engine, MPI
  rendezvous overlap, ...);
* **wall-clock time** — ``time.perf_counter`` at the same two points,
  so the real cost of the pure-Python codecs stays visible next to the
  simulated one.

Spans live on *tracks* (one per device/rank — the exporter maps tracks
to Perfetto threads) and nest through a per-track stack: the innermost
open span on the same track at entry becomes the parent.  Non-blocking
MPI sends run as separate simulated processes on the same rank, so a
span may close while a later sibling is still open; exit therefore
removes the span from wherever it sits in the stack rather than
requiring strict LIFO order.

The module-level tracer defaults to :data:`NULL_TRACER`, whose
``span()`` hands back one shared no-op span — the disabled path
allocates nothing per operation and experiment timings are unaffected.
Enable tracing with :func:`set_tracer` or the :func:`tracing` context
manager.

Timeline stitching: bench experiments build a fresh ``Environment``
(clock starting at 0) per measured operation.  The tracer assigns each
environment an offset equal to the largest timestamp recorded so far,
concatenating the runs into one monotone timeline whose total length is
the sum of the per-run simulated durations.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Iterator

__all__ = [
    "Span",
    "Track",
    "Tracer",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "tracing",
    "device_span",
]


class Span:
    """One recorded interval; also its own context manager."""

    __slots__ = (
        "name",
        "env",
        "track",
        "parent",
        "index",
        "sim_start",
        "sim_end",
        "wall_start",
        "wall_end",
        "attrs",
        "phases",
    )

    recording = True

    def __init__(self, name: str, env: Any, track: "Track",
                 attrs: "dict[str, Any] | None") -> None:
        self.name = name
        self.env = env
        self.track = track
        self.parent: "Span | None" = None
        self.index = -1
        self.sim_start = 0.0
        self.sim_end: float | None = None
        self.wall_start = 0.0
        self.wall_end: float | None = None
        self.attrs: dict[str, Any] = attrs or {}
        # (phase, seconds) charges forwarded by a bound TimeBreakdown.
        self.phases: list[tuple[str, float]] = []

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "Span":
        tracer = self.track.tracer
        self.sim_start = tracer._stamp(self.env)
        self.wall_start = perf_counter()
        stack = self.track.stack
        self.parent = stack[-1] if stack else None
        stack.append(self)
        self.index = len(tracer.spans)
        tracer.spans.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self.track.tracer
        self.sim_end = tracer._stamp(self.env)
        self.wall_end = perf_counter()
        stack = self.track.stack
        # Usually LIFO; overlapping isend flows may exit out of order.
        if stack and stack[-1] is self:
            stack.pop()
        else:
            try:
                stack.remove(self)
            except ValueError:
                pass
        return False

    # -- recording ---------------------------------------------------------

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def phase(self, name: str, seconds: float) -> None:
        """Record a phase-time charge (called by bound TimeBreakdowns)."""
        self.phases.append((name, seconds))

    # -- views -------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.sim_end is not None

    @property
    def sim_duration(self) -> float:
        end = self.sim_start if self.sim_end is None else self.sim_end
        return end - self.sim_start

    @property
    def wall_duration(self) -> float:
        end = self.wall_start if self.wall_end is None else self.wall_end
        return end - self.wall_start

    def is_descendant_of(self, other: "Span") -> bool:
        node = self.parent
        while node is not None:
            if node is other:
                return True
            node = node.parent
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span({self.name!r}, track={self.track.name!r}, "
            f"sim=[{self.sim_start:.6g}, {self.sim_end}], attrs={self.attrs})"
        )


class _NullSpan:
    """Shared do-nothing span: the disabled-tracing fast path."""

    __slots__ = ()

    recording = False
    name = ""
    parent = None
    attrs: dict = {}
    phases: list = []
    sim_start = 0.0
    sim_end = 0.0
    sim_duration = 0.0
    wall_duration = 0.0
    finished = True

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def phase(self, name: str, seconds: float) -> None:
        pass


NULL_SPAN = _NullSpan()


class Track:
    """One timeline lane (exported as a Perfetto thread)."""

    __slots__ = ("tracer", "name", "tid", "stack")

    def __init__(self, tracer: "Tracer", name: str, tid: int) -> None:
        self.tracer = tracer
        self.name = name
        self.tid = tid
        self.stack: list[Span] = []


class Tracer:
    """Span recorder; spans are kept in creation order."""

    recording = True

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.tracks: list[Track] = []
        self._tracks_by_key: dict[int, Track] = {}
        self._labels_used: dict[str, int] = {}
        self._env_offsets: dict[int, float] = {}
        # Strong references pin ids so CPython cannot reuse them for new
        # environments/track keys while this tracer is alive.
        self._pinned: list[Any] = []
        self._clock_max = 0.0
        self._default_track: Track | None = None

    # -- clocks ------------------------------------------------------------

    def _stamp(self, env: Any) -> float:
        """Absolute sim timestamp of ``env.now`` on the stitched timeline."""
        if env is None:
            return self._clock_max
        key = id(env)
        offset = self._env_offsets.get(key)
        if offset is None:
            offset = self._clock_max
            self._env_offsets[key] = offset
            self._pinned.append(env)
        ts = offset + env.now
        if ts > self._clock_max:
            self._clock_max = ts
        return ts

    @property
    def max_timestamp(self) -> float:
        """Largest sim timestamp recorded (the stitched-timeline length)."""
        return self._clock_max

    # -- tracks ------------------------------------------------------------

    def track_for(self, key: Any, label: str) -> Track:
        """The track for ``key`` (any object), created+labelled on first use."""
        track = self._tracks_by_key.get(id(key))
        if track is None:
            n = self._labels_used.get(label, 0)
            self._labels_used[label] = n + 1
            name = label if n == 0 else f"{label} #{n + 1}"
            track = Track(self, name, tid=len(self.tracks) + 1)
            self.tracks.append(track)
            self._tracks_by_key[id(key)] = track
            self._pinned.append(key)
        return track

    def _default(self) -> Track:
        if self._default_track is None:
            self._default_track = self.track_for(self, "main")
        return self._default_track

    # -- spans -------------------------------------------------------------

    def span(self, name: str, env: Any = None, track: "Track | None" = None,
             *, attrs: "dict[str, Any] | None" = None) -> Span:
        """A new span (enter it with ``with``); ``env`` supplies sim time."""
        return Span(name, env, track or self._default(), attrs)

    def subtree(self, root: Span) -> Iterator[Span]:
        """``root`` and every recorded descendant, in creation order."""
        for span in self.spans:
            if span is root or span.is_descendant_of(root):
                yield span

    def find(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]


class NullTracer:
    """Disabled tracer: every call is a no-op returning shared objects."""

    recording = False

    def span(self, name: str, env: Any = None, track: Any = None,
             *, attrs: "dict | None" = None) -> _NullSpan:
        return NULL_SPAN

    def track_for(self, key: Any, label: str) -> None:
        return None

    @property
    def spans(self) -> list:
        return []

    @property
    def max_timestamp(self) -> float:
        return 0.0


NULL_TRACER = NullTracer()

_current: "Tracer | NullTracer" = NULL_TRACER


def get_tracer() -> "Tracer | NullTracer":
    """The process-wide tracer (the no-op :data:`NULL_TRACER` by default)."""
    return _current


def set_tracer(tracer: "Tracer | NullTracer | None") -> "Tracer | NullTracer":
    """Install ``tracer`` globally (None resets); returns the previous one."""
    global _current
    previous = _current
    _current = NULL_TRACER if tracer is None else tracer
    return previous


class tracing:
    """``with tracing(Tracer()) as tr:`` — scoped tracer installation."""

    def __init__(self, tracer: "Tracer | None" = None) -> None:
        self.tracer = tracer or Tracer()
        self._previous: "Tracer | NullTracer | None" = None

    def __enter__(self) -> Tracer:
        self._previous = set_tracer(self.tracer)
        return self.tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_tracer(self._previous)
        return False


def device_span(name: str, device: Any, /, **attrs: Any):
    """Span on ``device``'s track (any object with ``.env`` and ``.name``).

    The single instrumentation entry point used across the runtime:
    resolves the current tracer, keys the track by the device object
    (each DPU — hence each MPI rank — gets its own timeline lane), and
    collapses to :data:`NULL_SPAN` when tracing is disabled.
    """
    tracer = _current
    if not tracer.recording:
        return NULL_SPAN
    track = tracer.track_for(device, device.name)
    return tracer.span(name, device.env, track=track, attrs=attrs)
