"""Trace/metric/profile exporters: Chrome trace JSON, JSONL, flamegraph.

``write_chrome_trace`` emits the Trace Event Format consumed by
Perfetto and ``chrome://tracing``: one complete (``ph: "X"``) event per
span, timestamped on the **simulated** clock in microseconds, with the
wall-clock cost and span attributes carried in ``args``.  Tracks map to
threads of a single synthetic process, named via ``M`` metadata events.

``write_jsonl`` emits one self-describing JSON object per line (spans,
then metric instruments) — the grep/pandas-friendly event log.  The
per-record shape is a stable contract pinned by
``tests/obs/test_export.py``.

``write_flamegraph`` renders a :class:`~repro.obs.profile.CodecProfiler`
as collapsed stacks (``path;to;kernel <self-microseconds>`` per line) —
the input format of Brendan Gregg's ``flamegraph.pl`` and of the
speedscope/pyroscope importers — so "which codec kernel burns the
clock" is one ``--flamegraph out.folded`` away.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, IO

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.profile import CodecProfiler
    from repro.obs.tracer import Span, Tracer

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "span_records",
    "write_jsonl",
    "write_metrics_json",
    "collapsed_stacks",
    "write_flamegraph",
]

_PID = 1


def _span_args(span: "Span") -> dict[str, Any]:
    args: dict[str, Any] = {k: _jsonable(v) for k, v in span.attrs.items()}
    args["wall_us"] = round(span.wall_duration * 1e6, 3)
    if span.phases:
        phases: dict[str, float] = {}
        for phase, seconds in span.phases:
            phases[phase] = phases.get(phase, 0.0) + seconds
        args["phases_s"] = phases
    return args


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def chrome_trace_events(tracer: "Tracer") -> list[dict[str, Any]]:
    """All trace events (metadata first, then spans in creation order)."""
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": _PID,
            "tid": 0,
            "args": {"name": "repro-sim"},
        }
    ]
    for track in tracer.tracks:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0,
                "pid": _PID,
                "tid": track.tid,
                "args": {"name": track.name},
            }
        )
    for span in tracer.spans:
        events.append(
            {
                "name": span.name,
                "cat": str(span.attrs.get("cat", "sim")),
                "ph": "X",
                "ts": span.sim_start * 1e6,
                "dur": span.sim_duration * 1e6,
                "pid": _PID,
                "tid": span.track.tid,
                "args": _span_args(span),
            }
        )
    return events


def write_chrome_trace(tracer: "Tracer", path: str) -> int:
    """Write the Chrome trace file; returns the number of span events."""
    events = chrome_trace_events(tracer)
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "simulated",
            "sim_seconds_total": tracer.max_timestamp,
        },
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=None, separators=(",", ":"))
        fh.write("\n")
    return len(tracer.spans)


def span_records(tracer: "Tracer") -> list[dict[str, Any]]:
    """JSONL-ready span dicts (creation order, parents by index)."""
    records = []
    for span in tracer.spans:
        records.append(
            {
                "type": "span",
                "index": span.index,
                "name": span.name,
                "track": span.track.name,
                "parent": None if span.parent is None else span.parent.index,
                "sim_start_s": span.sim_start,
                "sim_dur_s": span.sim_duration,
                "wall_dur_s": span.wall_duration,
                "attrs": {k: _jsonable(v) for k, v in span.attrs.items()},
                "phases": [[p, s] for p, s in span.phases],
            }
        )
    return records


def _metric_records(metrics: "MetricsRegistry") -> list[dict[str, Any]]:
    snapshot = metrics.as_dict()
    records: list[dict[str, Any]] = []
    for name, value in snapshot["counters"].items():
        records.append({"type": "counter", "name": name, "value": value})
    for name, g in snapshot["gauges"].items():
        records.append({"type": "gauge", "name": name, **g})
    for name, h in snapshot["histograms"].items():
        records.append({"type": "histogram", "name": name, **h})
    return records


def write_jsonl(tracer: "Tracer | None", path: str,
                metrics: "MetricsRegistry | None" = None) -> int:
    """Write spans (and optionally metrics) as JSON Lines; returns #lines."""
    lines = 0
    with open(path, "w", encoding="utf-8") as fh:
        if tracer is not None:
            lines += _dump_lines(fh, span_records(tracer))
        if metrics is not None:
            lines += _dump_lines(fh, _metric_records(metrics))
    return lines


def _dump_lines(fh: IO[str], records: list[dict[str, Any]]) -> int:
    for record in records:
        fh.write(json.dumps(record, separators=(",", ":")))
        fh.write("\n")
    return len(records)


def write_metrics_json(metrics: "MetricsRegistry", path: str) -> None:
    """Write one pretty-printed JSON snapshot of the registry."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(metrics.as_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")


def collapsed_stacks(profiler: "CodecProfiler") -> list[str]:
    """Collapsed-stack lines (``a;b;c <weight>``), weighted by **self**
    wall-microseconds per stack path, sorted by path for determinism.

    Zero-weight paths (kernels whose self time rounds below 1 µs) are
    kept with weight 0 so call counts remain visible to consumers that
    re-weight by ``calls``."""
    lines = []
    for path, stats in sorted(profiler.nodes.items()):
        weight = int(round(stats.self_s * 1e6))
        lines.append(f"{';'.join(path)} {weight}")
    return lines


def write_flamegraph(profiler: "CodecProfiler", path: str) -> int:
    """Write the profiler's collapsed stacks; returns the line count."""
    lines = collapsed_stacks(profiler)
    with open(path, "w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(line)
            fh.write("\n")
    return len(lines)
