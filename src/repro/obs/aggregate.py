"""Fleet aggregation: labeled registries rolled up into one snapshot.

PR 1's single process-wide :class:`~repro.obs.metrics.MetricsRegistry`
cannot describe a fleet: N gateways front M DPU workers, each with its
own registry, and questions like "fleet-wide p99" or "tenant A's
latency across every worker" need those registries *merged* — which the
sketch-backed histograms (:mod:`repro.obs.sketch`) make lossless in the
quantile-error sense.

Merge semantics (all order-independent):

* **counters** sum;
* **gauges** keep the most recent write (by the process-wide update
  stamp every ``Gauge.set`` takes), and pool min/max/update counts;
* **histograms** sum bucket counts and merge sketches — identical
  boundaries required, quantile error stays within the sketch alpha.

:class:`FleetAggregator` owns the list of member registries and builds
:class:`FleetSnapshot` views, optionally grouped by a label key subset
(e.g. ``group_by=("tenant",)`` for per-tenant SLO evaluation).  Scrapes
are **delta-aware**: each :meth:`scrape` records the counter deltas
since the previous scrape so rate-style consumers (the SLO monitor's
burn windows) see windowed movement, not lifetime totals.

:func:`scrape_process` is the sim-clock driver: a generator process
that scrapes on a fixed simulated interval.  Scraping only *reads*
member registries — it never touches simulation state, so a run with a
scrape loop is bit-for-bit identical to one without.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, Sequence

from repro.obs.metrics import Gauge, Histogram, MetricsRegistry

if TYPE_CHECKING:
    from repro.sim.engine import Environment

__all__ = [
    "merge_registries",
    "FleetSnapshot",
    "FleetAggregator",
    "scrape_process",
]


def merge_registries(registries: "Iterable[MetricsRegistry]",
                     labels: "dict[str, str] | None" = None) -> MetricsRegistry:
    """A fresh registry equal to the fold of ``registries``.

    The inputs are read, never mutated.  Instrument-level semantics are
    the ``merge`` methods on Counter/Gauge/Histogram (sum / last-write
    / bucket+sketch pool).

    The fold runs in **sorted label order**, not input order: gauge
    last-write-by-seq keeps the first-seen value on *equal* seq stamps,
    so folding in caller order made the merged snapshot depend on
    scrape/registration ordering whenever two registries carried the
    same seq (common when gauges are restored from serialized snapshots
    that share stamps).  Sorting on each member's immutable label tuple
    — its identity within a fleet — makes merges byte-identical across
    orderings; equal-label members (rare, discouraged) keep input order
    via sort stability.
    """
    out = MetricsRegistry(labels=labels)
    for registry in sorted(registries, key=lambda r: r.labels):
        for name, counter in registry.counters.items():
            out.counter(name).merge(counter)
        for name, gauge in registry.gauges.items():
            out.gauge(name).merge(gauge)
        for name, hist in registry.histograms.items():
            mine = out.histograms.get(name)
            if mine is None:
                mine = out.histograms[name] = Histogram(
                    name, hist.boundaries, alpha=hist.sketch.alpha
                )
            mine.merge(hist)
    return out


class FleetSnapshot:
    """One merged view of the fleet at a scrape instant.

    ``overall`` is the all-members merge; ``groups`` maps label-value
    tuples (ordered like ``group_by``) to the merge of the members
    carrying those values.  Members missing a ``group_by`` key land
    under the empty-string value for it.
    """

    __slots__ = ("sim_now", "group_by", "overall", "groups",
                 "counter_deltas", "interval_s")

    def __init__(self, sim_now: float, group_by: "tuple[str, ...]",
                 overall: MetricsRegistry,
                 groups: "dict[tuple[str, ...], MetricsRegistry]",
                 counter_deltas: "dict[str, float]",
                 interval_s: float) -> None:
        self.sim_now = sim_now
        self.group_by = group_by
        self.overall = overall
        self.groups = groups
        # Movement of each fleet-summed counter since the previous
        # scrape (equal to the totals on the first scrape).
        self.counter_deltas = counter_deltas
        self.interval_s = interval_s  # sim seconds since previous scrape

    def group(self, *values: str) -> "MetricsRegistry | None":
        return self.groups.get(tuple(values))

    def quantile(self, name: str, q: float) -> float:
        """Fleet-wide quantile of histogram ``name`` (sketch-backed)."""
        return self.overall.histograms[name].quantile(q)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready dump (the ``--metrics`` fleet snapshot shape)."""
        return {
            "sim_now": self.sim_now,
            "interval_s": self.interval_s,
            "group_by": list(self.group_by),
            "overall": self.overall.as_dict(),
            "counter_deltas": dict(sorted(self.counter_deltas.items())),
            "groups": {
                "|".join(key): reg.as_dict()
                for key, reg in sorted(self.groups.items())
            },
        }


class FleetAggregator:
    """Registry-of-registries with delta-aware scrapes.

    Members are registered once (per worker, per gateway, per tenant
    shard — whatever granularity produced them) and every
    :meth:`scrape` folds them into a fresh :class:`FleetSnapshot`.
    Aggregation recomputes from the members' current state each time,
    so late registration is safe; deltas are tracked on the fleet-level
    counter sums between consecutive scrapes.
    """

    def __init__(self) -> None:
        self._members: list[MetricsRegistry] = []
        self._member_ids: set[int] = set()
        self._last_counters: dict[str, float] = {}
        self._last_scrape_s = 0.0
        self.scrapes = 0
        self.history: list[FleetSnapshot] = []
        self.history_limit = 256

    def register(self, registry: MetricsRegistry) -> MetricsRegistry:
        """Add one member registry (idempotent per object); returns it."""
        if not isinstance(registry, MetricsRegistry):
            raise TypeError(
                f"can only aggregate MetricsRegistry, got "
                f"{type(registry).__name__}"
            )
        if id(registry) not in self._member_ids:
            self._member_ids.add(id(registry))
            self._members.append(registry)
        return registry

    def register_all(self, registries: "Iterable[MetricsRegistry]") -> None:
        for registry in registries:
            self.register(registry)

    @property
    def members(self) -> "tuple[MetricsRegistry, ...]":
        return tuple(self._members)

    def _grouped(self, group_by: "tuple[str, ...]",
                 ) -> "dict[tuple[str, ...], MetricsRegistry]":
        if not group_by:
            return {}
        buckets: dict[tuple[str, ...], list[MetricsRegistry]] = {}
        for member in self._members:
            labels = member.label_dict
            key = tuple(labels.get(k, "") for k in group_by)
            buckets.setdefault(key, []).append(member)
        return {
            key: merge_registries(members, labels=dict(zip(group_by, key)))
            for key, members in buckets.items()
        }

    def scrape(self, now_s: float = 0.0,
               group_by: "Sequence[str]" = ()) -> FleetSnapshot:
        """Merge every member into a snapshot stamped ``now_s``."""
        group_by = tuple(group_by)
        overall = merge_registries(self._members)
        totals = {n: c.value for n, c in overall.counters.items()}
        deltas = {
            name: value - self._last_counters.get(name, 0.0)
            for name, value in totals.items()
        }
        snapshot = FleetSnapshot(
            sim_now=now_s,
            group_by=group_by,
            overall=overall,
            groups=self._grouped(group_by),
            counter_deltas=deltas,
            interval_s=(now_s - self._last_scrape_s) if self.scrapes else 0.0,
        )
        self._last_counters = totals
        self._last_scrape_s = now_s
        self.scrapes += 1
        self.history.append(snapshot)
        if len(self.history) > self.history_limit:
            del self.history[: len(self.history) - self.history_limit]
        return snapshot

    def latest(self) -> "FleetSnapshot | None":
        return self.history[-1] if self.history else None


def scrape_process(
    env: "Environment",
    aggregator: FleetAggregator,
    interval_s: float,
    group_by: "Sequence[str]" = (),
    on_scrape: "Callable[[FleetSnapshot], Any] | None" = None,
) -> Generator:
    """Sim process: scrape ``aggregator`` every ``interval_s`` sim
    seconds, forever (run it with ``env.process`` and let the run's
    horizon bound it).  ``on_scrape`` receives each snapshot — the SLO
    monitor's entry point."""
    if interval_s <= 0.0:
        raise ValueError(f"scrape interval {interval_s} must be positive")
    while True:
        yield env.timeout(interval_s)
        snapshot = aggregator.scrape(env.now, group_by=group_by)
        if on_scrape is not None:
            on_scrape(snapshot)
