"""``repro.obs`` — observability for the PEDAL reproduction.

Three independent, composable pieces, all defaulting to zero-overhead
no-ops so the simulation's hot paths cost nothing unless a consumer
opts in:

* **span tracing** (:mod:`repro.obs.tracer`): nested, attributed spans
  on both the simulated and the wall clock;
* **metrics** (:mod:`repro.obs.metrics`): counters, gauges, and
  fixed-bucket histograms (queue depths, mempool hit/miss, bytes per
  codec, SoC fallbacks);
* **export** (:mod:`repro.obs.export`): Chrome trace-event JSON
  (open in Perfetto / ``chrome://tracing``) and a JSONL event log.

Plus :mod:`repro.obs.logging`, the ``repro.*`` stdlib-logging helper
(silent by default, ``REPRO_LOG=debug`` to enable).

Typical use (also wired into ``python -m repro.bench --trace``)::

    from repro import obs

    with obs.tracing() as tr, obs.collecting() as m:
        ...run simulation...
    obs.write_chrome_trace(tr, "run.trace.json")
    obs.write_jsonl(tr, "run.jsonl", metrics=m)
"""

from repro.obs.export import (
    chrome_trace_events,
    span_records,
    write_chrome_trace,
    write_jsonl,
    write_metrics_json,
)
from repro.obs.logging import configure as configure_logging, get_logger
from repro.obs.metrics import (
    BYTES_BUCKETS,
    NULL_METRICS,
    QUEUE_DEPTH_BUCKETS,
    RETRY_ATTEMPT_BUCKETS,
    SIM_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    collecting,
    get_metrics,
    set_metrics,
)
from repro.obs.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    Track,
    device_span,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    # tracer
    "Span",
    "Track",
    "Tracer",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "tracing",
    "device_span",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "get_metrics",
    "set_metrics",
    "collecting",
    "QUEUE_DEPTH_BUCKETS",
    "SIM_SECONDS_BUCKETS",
    "BYTES_BUCKETS",
    "RETRY_ATTEMPT_BUCKETS",
    # export
    "chrome_trace_events",
    "span_records",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics_json",
    # logging
    "get_logger",
    "configure_logging",
]
