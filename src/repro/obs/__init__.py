"""``repro.obs`` — observability for the PEDAL reproduction.

A fleet-grade telemetry plane built from composable pieces, all
defaulting to zero-overhead no-ops so the simulation's hot paths cost
nothing unless a consumer opts in:

* **span tracing** (:mod:`repro.obs.tracer`): nested, attributed spans
  on both the simulated and the wall clock;
* **metrics** (:mod:`repro.obs.metrics`): counters, gauges, and
  sketch-backed histograms on labeled registries;
* **quantile sketches** (:mod:`repro.obs.sketch`): deterministic
  DDSketch-style relative-error sketches that merge losslessly — the
  backing store for every histogram and for fleet percentiles;
* **fleet aggregation** (:mod:`repro.obs.aggregate`): per-worker /
  per-gateway / per-tenant registries rolled up into one snapshot
  (counters sum, gauges last-write, sketches merge) on a sim-clock
  scrape interval;
* **SLO monitoring** (:mod:`repro.obs.slo`): per-tenant latency and
  goodput objectives with multi-window burn-rate alerts, driven off
  the aggregated sketches;
* **codec profiling** (:mod:`repro.obs.profile`): seeded, sampled
  wall-clock attribution per codec kernel with exemplar span links;
* **export** (:mod:`repro.obs.export`): Chrome trace-event JSON
  (open in Perfetto / ``chrome://tracing``), a JSONL event log, and a
  collapsed-stack flamegraph.

Plus :mod:`repro.obs.logging`, the ``repro.*`` stdlib-logging helper
(silent by default; ``REPRO_LOG=debug`` or per-subsystem specs like
``REPRO_LOG=serve=debug,obs=warning`` to enable).

Typical use (also wired into ``python -m repro.bench --trace``)::

    from repro import obs

    with obs.tracing() as tr, obs.collecting() as m, obs.profiling() as p:
        ...run simulation...
    obs.write_chrome_trace(tr, "run.trace.json")
    obs.write_jsonl(tr, "run.jsonl", metrics=m)
    obs.write_flamegraph(p, "run.folded")
"""

from repro.obs.aggregate import (
    FleetAggregator,
    FleetSnapshot,
    merge_registries,
    scrape_process,
)
from repro.obs.export import (
    chrome_trace_events,
    collapsed_stacks,
    span_records,
    write_chrome_trace,
    write_flamegraph,
    write_jsonl,
    write_metrics_json,
)
from repro.obs.logging import configure as configure_logging, get_logger
from repro.obs.metrics import (
    BYTES_BUCKETS,
    NULL_METRICS,
    QUEUE_DEPTH_BUCKETS,
    RETRY_ATTEMPT_BUCKETS,
    SIM_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    collecting,
    get_metrics,
    set_metrics,
)
from repro.obs.profile import (
    NULL_PROFILER,
    CodecProfiler,
    KernelExemplar,
    KernelStats,
    NullProfiler,
    get_profiler,
    profiling,
    set_profiler,
)
from repro.obs.sketch import DEFAULT_ALPHA, QuantileSketch
from repro.obs.slo import (
    DEFAULT_WINDOWS,
    BurnWindow,
    SloAlert,
    SloMonitor,
    SloObjective,
)
from repro.obs.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    Track,
    device_span,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    # tracer
    "Span",
    "Track",
    "Tracer",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "tracing",
    "device_span",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "get_metrics",
    "set_metrics",
    "collecting",
    "QUEUE_DEPTH_BUCKETS",
    "SIM_SECONDS_BUCKETS",
    "BYTES_BUCKETS",
    "RETRY_ATTEMPT_BUCKETS",
    # sketch
    "QuantileSketch",
    "DEFAULT_ALPHA",
    # aggregation
    "FleetAggregator",
    "FleetSnapshot",
    "merge_registries",
    "scrape_process",
    # SLO
    "SloObjective",
    "BurnWindow",
    "SloAlert",
    "SloMonitor",
    "DEFAULT_WINDOWS",
    # profiling
    "CodecProfiler",
    "NullProfiler",
    "NULL_PROFILER",
    "KernelStats",
    "KernelExemplar",
    "get_profiler",
    "set_profiler",
    "profiling",
    # export
    "chrome_trace_events",
    "span_records",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics_json",
    "collapsed_stacks",
    "write_flamegraph",
    # logging
    "get_logger",
    "configure_logging",
]
