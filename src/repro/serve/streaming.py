"""Large-payload streaming through the serving gateway.

A :class:`StreamingSession` splits an oversized payload into
chunk-sized :class:`~repro.serve.request.ServeRequest`\\ s, lets the
gateway batch/route/execute them like any other traffic, and assembles
the results into the same RST1 container the MPI fabric path ships
(:mod:`repro.stream`).  The container is **byte-identical** to a
one-shot :func:`repro.stream.stream_compress` with matching codec
configuration — a client can compress through the gateway and hand the
container to an MPI rank (or vice versa) and every CRC checks out.

The decompress direction accepts any RST1 container, fans its frames
out as per-chunk decompress requests, and verifies the per-chunk and
whole-stream CRCs on reassembly, raising the same typed
:class:`~repro.errors.StreamError`\\ s as the incremental decoder.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Generator

from repro.core.codecs import CodecConfig
from repro.dpu.specs import Algo, Direction
from repro.errors import (
    AdmissionError,
    CodecError,
    StreamChecksumError,
    StreamCorruptError,
    StreamError,
)
from repro.serve.request import ServeRequest
from repro.stream import (
    DEFAULT_CHUNK_BYTES,
    FrameParser,
    StreamConfig,
    encode_data_frame,
    encode_end_frame,
    encode_stream_header,
)

if TYPE_CHECKING:
    from repro.serve.gateway import ServeGateway

__all__ = ["StreamingSession"]

_U32_MAX = 0xFFFF_FFFF


class StreamingSession:
    """Chunked (de)compression of one payload through a gateway."""

    def __init__(
        self,
        gateway: "ServeGateway",
        algo: Algo = Algo.DEFLATE,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        tenant: str | None = None,
    ) -> None:
        # StreamConfig validates algo/chunk_bytes and pins the codec
        # tuning to the gateway's, so containers produced here match
        # repro.stream.stream_compress byte for byte.
        self.config = StreamConfig(
            algo=algo,
            chunk_bytes=chunk_bytes,
            codecs=CodecConfig(
                deflate=gateway.config.deflate,
                ac=gateway.config.ac or CodecConfig().ac,
            ),
        )
        self.gateway = gateway
        self.tenant = tenant
        self._req_seq = 0

    # -- compress ----------------------------------------------------------

    def compress(self, payload: bytes, sim_bytes: float | None = None) -> Generator:
        """Sim process: stream ``payload`` through the gateway.

        Returns the complete RST1 container.  Chunks are submitted up
        front (the gateway's admission/batching policies apply) and
        assembled in order as their tickets complete.
        """
        raw = bytes(payload)
        scale = (sim_bytes / len(raw)) if sim_bytes and len(raw) else 1.0
        size = self.config.chunk_bytes
        chunks = [raw[i:i + size] for i in range(0, len(raw), size)]
        tickets = [
            self._submit(Direction.COMPRESS, chunk, len(chunk) * scale)
            for chunk in chunks
        ]
        out = bytearray(encode_stream_header(self.config.algo, size))
        for ticket, chunk in zip(tickets, chunks):
            if ticket.shed:
                raise AdmissionError(
                    "gateway shed a streaming chunk; the container cannot "
                    "be completed"
                )
            response = yield from ticket.wait()
            out += encode_data_frame(
                response.payload, len(chunk), zlib.crc32(chunk) & _U32_MAX
            )
        out += encode_end_frame(len(raw), zlib.crc32(raw) & _U32_MAX)
        return bytes(out)

    # -- decompress --------------------------------------------------------

    def decompress(self, container: bytes, sim_bytes: float | None = None) -> Generator:
        """Sim process: decode an RST1 container through the gateway."""
        parser = FrameParser()
        parsed = parser.feed(bytes(container))
        if not parser.finished:
            raise StreamCorruptError(
                "container truncated: no end frame "
                f"({parser.pending_bytes} byte(s) buffered mid-frame)"
            )
        end = parsed[-1]  # parser.finished guarantees the terminator
        frames = parsed[:-1]
        total = sum(f.raw_len for f in frames)
        scale = (sim_bytes / total) if sim_bytes and total else 1.0
        try:
            # The gateway runs the real codec at submit time, so an
            # undecodable chunk payload surfaces here — re-typed to the
            # incremental Decompressor's contract.
            tickets = [
                self._submit(
                    Direction.DECOMPRESS, f.payload, f.raw_len * scale
                )
                for f in frames
            ]
        except StreamError:
            raise
        except CodecError as exc:
            raise StreamCorruptError(
                f"chunk payload undecodable: {exc}"
            ) from exc
        crc = 0
        parts: list[bytes] = []
        for frame, ticket in zip(frames, tickets):
            if ticket.shed:
                raise AdmissionError(
                    "gateway shed a streaming chunk; the container cannot "
                    "be decoded"
                )
            try:
                response = yield from ticket.wait()
            except StreamError:
                raise
            except CodecError as exc:
                # Same contract as the incremental Decompressor: a chunk
                # payload the codec rejects is a corrupt *stream*.
                raise StreamCorruptError(
                    f"chunk payload undecodable: {exc}"
                ) from exc
            raw = response.payload
            if len(raw) != frame.raw_len:
                raise StreamCorruptError(
                    f"chunk decoded to {len(raw)} bytes, frame declared "
                    f"{frame.raw_len}"
                )
            actual = zlib.crc32(raw) & _U32_MAX
            if actual != frame.crc:
                raise StreamChecksumError("chunk crc32", frame.crc, actual)
            crc = zlib.crc32(raw, crc) & _U32_MAX
            parts.append(raw)
        if total != end.raw_len:
            raise StreamCorruptError(
                f"end frame declares {end.raw_len} raw bytes, decoded {total}"
            )
        if crc != end.crc:
            raise StreamChecksumError("stream crc32", end.crc, crc)
        return b"".join(parts)

    # -- internals ---------------------------------------------------------

    def _submit(self, direction: Direction, payload: bytes, sim_bytes: float):
        self._req_seq += 1
        return self.gateway.submit(
            ServeRequest(
                direction=direction,
                payload=payload,
                sim_bytes=sim_bytes,
                req_id=("stream", self._req_seq),
                tenant=self.tenant,
                algo=self.config.algo,
            )
        )
