"""Size- and deadline-based coalescing of small requests into batches.

Small messages are where the C-Engine's fixed per-job overhead
(§V-B: 0.25 ms/1.0 ms per direction on BF-2, 161 µs on BF-3) dominates,
so the gateway amortizes it ZipLine-style: requests accumulate in a
per-direction open batch that flushes when it reaches ``max_msgs``
messages or ``max_sim_bytes`` simulated bytes — or when the oldest
request in it has waited ``flush_deadline_s`` on the sim clock, so a
trickle of traffic never stalls indefinitely.

``max_msgs=1`` degenerates to unbatched pass-through, which is the
baseline the serve bench compares against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Generator

from repro.dpu.specs import Algo, Direction
from repro.obs import QUEUE_DEPTH_BUCKETS, get_metrics

if TYPE_CHECKING:
    from repro.serve.request import ServeRequest
    from repro.sim.engine import Environment, Event

__all__ = ["BatchPolicy", "BatchEntry", "Batch", "Batcher"]


@dataclass(frozen=True)
class BatchPolicy:
    """When an open batch flushes."""

    max_msgs: int = 8                  # flush at this many messages
    max_sim_bytes: float = 8 * 2**20   # ...or this many engine-billed bytes
    flush_deadline_s: float = 2.5e-4   # ...or this much sim-clock age

    def __post_init__(self) -> None:
        if self.max_msgs < 1:
            raise ValueError("max_msgs must be >= 1")
        if self.max_sim_bytes <= 0:
            raise ValueError("max_sim_bytes must be > 0")
        if self.flush_deadline_s <= 0:
            raise ValueError("flush_deadline_s must be > 0")


@dataclass(frozen=True)
class BatchEntry:
    """One admitted request plus its precomputed codec output + billing."""

    request: "ServeRequest"
    output: bytes             # real codec output (computed eagerly)
    engine_sim_bytes: float   # what the C-Engine ingests (compressed on dec)
    soc_sim_bytes: float      # uncompressed size (SoC/CRC convention)
    accepted_s: float
    event: "Event"            # fires with this request's ServeResponse


@dataclass
class Batch:
    """An accumulating (then flushed) group of entries sharing one
    (direction, algo) — so a flushed batch is exactly one engine job."""

    batch_id: int
    direction: Direction
    opened_s: float
    entries: "list[BatchEntry]" = field(default_factory=list)
    algo: Algo = Algo.DEFLATE

    @property
    def size(self) -> int:
        return len(self.entries)

    @property
    def engine_sim_bytes(self) -> float:
        return sum(e.engine_sim_bytes for e in self.entries)

    @property
    def soc_sim_bytes(self) -> float:
        return sum(e.soc_sim_bytes for e in self.entries)

    @property
    def payload(self) -> bytes:
        return b"".join(e.output for e in self.entries)


class Batcher:
    """Per-(direction, algo) accumulators driving an ``on_flush``
    callback.

    Flush triggers:

    * **size** — the open batch reaches ``max_msgs`` or
      ``max_sim_bytes`` (checked on every :meth:`add`, flushes
      synchronously);
    * **deadline** — a sim-clock timer armed when the batch opens; a
      monotonically increasing per-direction epoch lets stale timers
      (their batch already flushed) expire as no-ops.
    """

    def __init__(
        self,
        env: "Environment",
        policy: BatchPolicy,
        on_flush: Callable[[Batch], None],
    ) -> None:
        self.env = env
        self.policy = policy
        self.on_flush = on_flush
        self._open: "dict[tuple[Direction, Algo], Batch]" = {}
        self._epoch: "dict[tuple[Direction, Algo], int]" = {}
        self._next_batch_id = 0
        self.batches_flushed = 0

    @property
    def open_count(self) -> int:
        """Entries currently buffered (across all open batches)."""
        return sum(b.size for b in self._open.values())

    def add(self, entry: BatchEntry) -> None:
        algo = getattr(entry.request, "algo", Algo.DEFLATE)
        key = (entry.request.direction, algo)
        batch = self._open.get(key)
        newly_opened = batch is None
        if batch is None:
            batch = Batch(
                self._next_batch_id, key[0], self.env.now, algo=algo
            )
            self._next_batch_id += 1
            self._open[key] = batch
            self._epoch[key] = self._epoch.get(key, 0) + 1
        batch.entries.append(entry)
        if (
            batch.size >= self.policy.max_msgs
            or batch.engine_sim_bytes >= self.policy.max_sim_bytes
        ):
            self._flush_key(key)
        elif newly_opened and math.isfinite(self.policy.flush_deadline_s):
            self.env.process(
                self._deadline(key, self._epoch[key]),
                name=f"serve:deadline:{batch.batch_id}",
            )

    def flush(self, direction: Direction, algo: "Algo | None" = None) -> None:
        """Close and dispatch the open batch(es) for ``direction``.

        With ``algo`` given, only that (direction, algo) batch flushes;
        otherwise every open batch travelling in ``direction`` does —
        the pre-mixed-algo behaviour callers still rely on.
        """
        if algo is not None:
            self._flush_key((direction, algo))
            return
        for key in list(self._open):
            if key[0] is direction:
                self._flush_key(key)

    def _flush_key(self, key: "tuple[Direction, Algo]") -> None:
        batch = self._open.pop(key, None)
        if batch is None or not batch.entries:
            return
        self.batches_flushed += 1
        metrics = get_metrics()
        metrics.inc("serve.batches")
        metrics.observe("serve.batch_msgs", batch.size,
                        boundaries=QUEUE_DEPTH_BUCKETS)
        self.on_flush(batch)

    def flush_all(self) -> None:
        for key in list(self._open):
            self._flush_key(key)

    def _deadline(self, key: "tuple[Direction, Algo]", epoch: int) -> Generator:
        yield self.env.timeout(self.policy.flush_deadline_s)
        # Only fire for the batch that armed this timer: if it already
        # flushed on size (epoch advanced when a successor opened, or
        # the slot is simply empty), do nothing.
        if self._epoch.get(key) == epoch and key in self._open:
            self._flush_key(key)
