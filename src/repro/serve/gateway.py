"""The serving gateway: admission → batching → routing → execution.

:class:`ServeGateway` fronts a fleet of simulated DPUs (mixed BF-2 /
BF-3) sharing one sim clock.  A request's life:

1. **codec** — the real DEFLATE work runs eagerly at submit time, so
   every response's bytes are fixed before any simulated scheduling.
   Batching, routing, device mix, and faults can only move the clock;
   batched output is byte-identical to unbatched, per-request output.
2. **admission** — :class:`~repro.serve.admission.AdmissionController`
   bounds pending requests; overflow is shed with an explicit refusal
   (backpressure, not an unbounded queue).
3. **batching** — :class:`~repro.serve.batcher.Batcher` coalesces
   same-direction requests to amortize the C-Engine's fixed per-job
   overhead across messages.
4. **routing** — a pluggable :class:`~repro.serve.router.Router` picks
   the device; each device runs its batches through its own
   :class:`~repro.sched.PipelineScheduler`, so engine faults, retries,
   and SoC work-stealing behave exactly as on the single-device path.

Simulated billing: a batch is one engine job whose ``sim_bytes`` is the
sum of its members' engine-billed sizes (compressed bytes on the
decompress direction — the C-Engine ingests the compressed stream) and
whose ``soc_sim_bytes`` is the summed uncompressed size (the SoC /
drain-CRC convention).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator, Sequence

from repro.algorithms.deflate import DeflateConfig, deflate_compress, deflate_decompress
from repro.dpu.specs import Algo, Direction
from repro.errors import NoLatencySamplesError
from repro.obs import device_span, get_metrics
from repro.sched import EngineJob, PipelineScheduler, SchedConfig
from repro.serve.admission import AdmissionController
from repro.serve.batcher import Batch, BatchEntry, Batcher, BatchPolicy
from repro.serve.request import ServeRequest, ServeResponse, ServeTicket
from repro.serve.router import Router, make_router

if TYPE_CHECKING:
    from repro.dpu.device import BlueFieldDPU
    from repro.sim.engine import Environment, Event

__all__ = ["ServeConfig", "DpuWorker", "ServeGateway"]


@dataclass(frozen=True)
class ServeConfig:
    """Gateway policy knobs."""

    batch: BatchPolicy = field(default_factory=BatchPolicy)
    max_pending: int = 64
    router: "str | Router" = "least_queue_depth"
    sched: SchedConfig = field(default_factory=SchedConfig)
    deflate: DeflateConfig | None = None


class DpuWorker:
    """One fleet member: a device plus its pipelined scheduler."""

    __slots__ = ("device", "scheduler", "batches_served", "requests_served")

    def __init__(self, device: "BlueFieldDPU", sched: SchedConfig) -> None:
        self.device = device
        self.scheduler = PipelineScheduler(device, sched)
        self.batches_served = 0
        self.requests_served = 0

    @property
    def name(self) -> str:
        return self.device.name

    @property
    def load(self) -> int:
        """Jobs in flight or queued at this device (router load signal)."""
        return self.scheduler.in_flight + self.scheduler.queued

    def supports(self, direction: Direction) -> bool:
        return self.device.cengine.supports(Algo.DEFLATE, direction)


class ServeGateway:
    """Batching, backpressured front door for a DPU fleet."""

    def __init__(
        self,
        env: "Environment",
        devices: "Sequence[BlueFieldDPU]",
        config: ServeConfig | None = None,
    ) -> None:
        if not devices:
            raise ValueError("ServeGateway needs at least one device")
        for device in devices:
            if device.env is not env:
                raise ValueError(
                    f"device {device.name} lives on a different Environment"
                )
        self.env = env
        self.config = config or ServeConfig()
        self.workers = [DpuWorker(d, self.config.sched) for d in devices]
        self.router = make_router(self.config.router)
        self.admission = AdmissionController(self.config.max_pending)
        self.batcher = Batcher(env, self.config.batch, self._dispatch)
        self._inflight: "set[Event]" = set()
        self._auto_id = 0
        self.submitted = 0
        self.completed = 0
        self.completed_sim_bytes = 0.0  # uncompressed bytes served
        self._latencies: list[float] = []

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------

    def submit(self, request: ServeRequest) -> ServeTicket:
        """Offer one request; returns its ticket (``.shed`` if refused).

        The real codec work happens here, before admission-shed
        requests are turned away — shed requests cost nothing, and
        admitted requests' output bytes are pinned down before the
        simulation schedules anything.
        """
        self.submitted += 1
        get_metrics().inc("serve.requests")
        if not self.admission.try_admit():
            return ServeTicket(request, None)
        if request.req_id is None:
            request = dataclasses.replace(request, req_id=self._auto_id)
            self._auto_id += 1
        entry = self._make_entry(request)
        self._inflight.add(entry.event)
        self.batcher.add(entry)
        return ServeTicket(request, entry.event)

    def drain(self) -> Generator:
        """Flush partial batches and wait for every admitted request."""
        self.batcher.flush_all()
        while self._inflight:
            yield self.env.all_of(list(self._inflight))

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    @property
    def latencies(self) -> "tuple[float, ...]":
        return tuple(self._latencies)

    def latency_percentile(self, q: float) -> float:
        """Nearest-rank percentile (``q`` in [0, 100]) of completed
        request latencies.

        Raises :class:`~repro.errors.NoLatencySamplesError` (a
        :class:`ValueError` subclass) when no request has completed
        yet — e.g. at very low offered load before the first drain.
        """
        if not self._latencies:
            raise NoLatencySamplesError("no completed requests yet")
        if not 0 <= q <= 100:
            raise ValueError(f"percentile {q} outside [0, 100]")
        ordered = sorted(self._latencies)
        rank = max(1, -(-len(ordered) * q // 100))  # ceil, 1-based
        return ordered[int(rank) - 1]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _make_entry(self, request: ServeRequest) -> BatchEntry:
        """Run the real codec and fix the two-domain billing sizes."""
        if request.direction is Direction.COMPRESS:
            output = deflate_compress(request.payload, self.config.deflate)
            sim_in = float(
                len(request.payload) if request.sim_bytes is None
                else request.sim_bytes
            )
            engine_sim = soc_sim = sim_in
        else:
            output = deflate_decompress(request.payload)
            sim_out = float(
                len(output) if request.sim_bytes is None else request.sim_bytes
            )
            # The engine ingests the compressed stream on decompress;
            # scale its actual size into the simulated domain.
            scale = sim_out / len(output) if output else 1.0
            engine_sim = len(request.payload) * scale
            soc_sim = sim_out
        return BatchEntry(
            request=request,
            output=output,
            engine_sim_bytes=engine_sim,
            soc_sim_bytes=soc_sim,
            accepted_s=self.env.now,
            event=self.env.event(),
        )

    def _dispatch(self, batch: Batch) -> None:
        """Batcher flush callback: route and launch the batch."""
        worker = self.router.pick(self.workers, batch)
        self.env.process(
            self._run_batch(worker, batch),
            name=f"serve:batch:{batch.batch_id}",
        )

    def _run_batch(self, worker: DpuWorker, batch: Batch) -> Generator:
        job = EngineJob(
            Algo.DEFLATE,
            batch.direction,
            batch.engine_sim_bytes,
            payload=batch.payload,
            tag=batch.batch_id,
            soc_sim_bytes=batch.soc_sim_bytes,
        )
        metrics = get_metrics()
        try:
            with device_span(
                "serve.batch",
                worker.device,
                batch=batch.batch_id,
                direction=batch.direction.value,
                msgs=batch.size,
                sim_bytes=batch.engine_sim_bytes,
            ):
                outcome = yield worker.scheduler.submit(job).event
        except BaseException as exc:
            # Without SoC fallback an exhausted engine job surfaces its
            # DOCA error here; fan it out so no ticket waits forever.
            for entry in batch.entries:
                self.admission.complete()
                self._inflight.discard(entry.event)
                entry.event.fail(exc)
            return
        now = self.env.now
        worker.batches_served += 1
        worker.requests_served += batch.size
        for entry in batch.entries:
            response = ServeResponse(
                req_id=entry.request.req_id,
                direction=batch.direction,
                payload=entry.output,
                device=worker.name,
                engine=outcome.engine,
                accepted_s=entry.accepted_s,
                completed_s=now,
                batch_id=batch.batch_id,
                batch_size=batch.size,
            )
            self.completed += 1
            self.completed_sim_bytes += entry.soc_sim_bytes
            self._latencies.append(response.latency_s)
            metrics.observe("serve.latency_s", response.latency_s)
            self.admission.complete()
            self._inflight.discard(entry.event)
            entry.event.succeed(response)
