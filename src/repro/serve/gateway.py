"""The serving gateway: admission → batching → routing → execution.

:class:`ServeGateway` fronts a fleet of simulated DPUs (mixed BF-2 /
BF-3) sharing one sim clock.  A request's life:

1. **codec** — the real codec work (DEFLATE, LZ4, or the adaptive
   -context ``ac`` coder, per ``request.algo``) runs eagerly at submit
   time, so every response's bytes are fixed before any simulated
   scheduling.  Batching, routing, device mix, and faults can only move
   the clock; batched output is byte-identical to unbatched,
   per-request output.
2. **admission** — :class:`~repro.serve.admission.AdmissionController`
   bounds pending requests; overflow is shed with an explicit refusal
   (backpressure, not an unbounded queue).
3. **batching** — :class:`~repro.serve.batcher.Batcher` coalesces
   same-(direction, algo) requests to amortize the C-Engine's fixed
   per-job overhead across messages.
4. **routing** — a pluggable :class:`~repro.serve.router.Router` picks
   the device; each device runs its batches through its own
   :class:`~repro.sched.PipelineScheduler`, so engine faults, retries,
   and SoC work-stealing behave exactly as on the single-device path.

Simulated billing: a batch is one engine job whose ``sim_bytes`` is the
sum of its members' engine-billed sizes (compressed bytes on the
decompress direction — the C-Engine ingests the compressed stream) and
whose ``soc_sim_bytes`` is the summed uncompressed size (the SoC /
drain-CRC convention).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator, Sequence

from repro.algorithms.ac import ACConfig, ac_compress, ac_decompress
from repro.algorithms.deflate import DeflateConfig, deflate_compress, deflate_decompress
from repro.algorithms.lz4 import lz4_compress, lz4_decompress
from repro.core.registry import cengine_core_algo
from repro.util.scratch import get_scratch_pool
from repro.dpu.specs import Algo, Direction
from repro.errors import NoCapableWorkerError, NoLatencySamplesError, WorkerDiedError
from repro.obs import MetricsRegistry, QuantileSketch, device_span, get_metrics
from repro.obs.sketch import DEFAULT_ALPHA
from repro.obs.slo import GOODPUT_COUNTER, LATENCY_METRIC
from repro.sched import EngineJob, PipelineScheduler, SchedConfig
from repro.serve.admission import AdmissionController
from repro.serve.batcher import Batch, BatchEntry, Batcher, BatchPolicy
from repro.serve.request import ServeRequest, ServeResponse, ServeTicket
from repro.serve.router import Router, make_router

if TYPE_CHECKING:
    from repro.dpu.device import BlueFieldDPU
    from repro.obs import FleetAggregator
    from repro.sim.engine import Environment, Event

__all__ = ["ServeConfig", "TelemetryConfig", "DpuWorker", "ServeGateway"]


@dataclass(frozen=True)
class TelemetryConfig:
    """Fleet-telemetry opt-in for one gateway.

    When set on :class:`ServeConfig`, the gateway builds labeled
    per-worker registries (``gateway``/``worker`` labels; the worker's
    scheduler reports occupancy and steal counters there) plus
    per-(worker, tenant) registries carrying the latency sketch and
    goodput counter the SLO monitor consumes.  All of them register
    with ``aggregator`` when one is given.  Telemetry never touches the
    sim clock: runs are bit-for-bit identical with it on or off.
    """

    gateway: str = "gw0"
    alpha: float = DEFAULT_ALPHA
    default_tenant: str = "default"
    aggregator: "FleetAggregator | None" = None
    # Cluster deployments set the owning shard so fleet scrapes can
    # group_by=("tenant", "shard"); None omits the label entirely.
    shard: "str | None" = None


@dataclass(frozen=True)
class ServeConfig:
    """Gateway policy knobs."""

    batch: BatchPolicy = field(default_factory=BatchPolicy)
    max_pending: int = 64
    router: "str | Router" = "least_queue_depth"
    sched: SchedConfig = field(default_factory=SchedConfig)
    deflate: DeflateConfig | None = None
    ac: ACConfig | None = None
    telemetry: TelemetryConfig | None = None
    # Host-side scratch prewarm: bytes of codec pack-buffer seeded per
    # device at gateway construction (0 disables).  Wall-clock only.
    scratch_prewarm_bytes: int = 1 << 20
    # Worker-death failover: when on, every in-flight batch races its
    # scheduler completion against the worker's death event and
    # re-dispatches to a surviving replica on loss.  Off by default:
    # the race inserts one extra event per batch into the sim queue,
    # which would perturb the pinned single-gateway bench trajectories.
    failover: bool = False


class DpuWorker:
    """One fleet member: a device plus its pipelined scheduler."""

    __slots__ = ("device", "scheduler", "batches_served", "requests_served",
                 "registry", "alive", "died")

    def __init__(self, device: "BlueFieldDPU", sched: SchedConfig,
                 registry: "MetricsRegistry | None" = None) -> None:
        self.device = device
        self.registry = registry
        self.scheduler = PipelineScheduler(device, sched, metrics=registry)
        self.batches_served = 0
        self.requests_served = 0
        # Whole-worker death: routers skip dead workers; failover-enabled
        # batch runners race their completion against ``died``.
        self.alive = True
        self.died = device.env.event()

    def kill(self) -> None:
        """Mark this worker dead and wake every batch racing on it.

        Idempotent: a second kill is a no-op (the death event is
        one-shot, like the real DPU falling off the PCIe bus once).
        """
        if not self.alive:
            return
        self.alive = False
        self.died.succeed(self.name)

    @property
    def name(self) -> str:
        return self.device.name

    @property
    def load(self) -> int:
        """Jobs in flight or queued at this device (router load signal)."""
        return self.scheduler.in_flight + self.scheduler.queued

    def supports(self, direction: Direction, algo: Algo = Algo.DEFLATE) -> bool:
        """True when this device's C-Engine natively runs ``algo`` in
        ``direction`` (via its engine-core mapping; ``ac`` maps to
        itself, which no engine implements, so it is SoC-only)."""
        return self.device.cengine.supports(cengine_core_algo(algo), direction)


class ServeGateway:
    """Batching, backpressured front door for a DPU fleet."""

    def __init__(
        self,
        env: "Environment",
        devices: "Sequence[BlueFieldDPU]",
        config: ServeConfig | None = None,
    ) -> None:
        if not devices:
            raise ValueError("ServeGateway needs at least one device")
        for device in devices:
            if device.env is not env:
                raise ValueError(
                    f"device {device.name} lives on a different Environment"
                )
        self.env = env
        self.config = config or ServeConfig()
        telemetry = self.config.telemetry
        self.telemetry = telemetry
        self.workers = [
            DpuWorker(
                d,
                self.config.sched,
                registry=self._make_registry(worker=d.name),
            )
            for d in devices
        ]
        router = make_router(self.config.router)
        if router is self.config.router:
            # A shared Router *instance* was passed in (two gateways over
            # one pool must not alias one round-robin cursor or cost
            # cache); name specs already built a fresh instance above.
            router = router.clone()
        self.router = router
        self.admission = AdmissionController(self.config.max_pending)
        # Seed the host-side scratch pool so the per-algo codecs hit
        # warm pack buffers from the first request (mirrors PEDAL_init's
        # DOCA buffer prewarm, but for real wall-clock allocations).
        if self.config.scratch_prewarm_bytes > 0:
            get_scratch_pool().prewarm(
                self.config.scratch_prewarm_bytes, count=len(self.workers)
            )
        self.batcher = Batcher(env, self.config.batch, self._dispatch)
        # Append-only routing trace: (batch_id, kind, worker) per pick.
        # The cluster bench digests this for bit-for-bit gating.
        self.routing_log: "list[tuple[int, str, str]]" = []
        self._inflight: "set[Event]" = set()
        self._auto_id = 0
        self.submitted = 0
        self.completed = 0
        self.completed_sim_bytes = 0.0  # uncompressed bytes served
        self._latencies: list[float] = []
        # Always-on percentile store: deterministic, mergeable, O(1)
        # per observation (the exact list above is kept for tests and
        # error analysis, not for serving percentiles).
        alpha = telemetry.alpha if telemetry is not None else DEFAULT_ALPHA
        self.latency_sketch = QuantileSketch(alpha)
        # Per-(worker, tenant) registries, created on first completion.
        self._tenant_registries: "dict[tuple[str, str], MetricsRegistry]" = {}

    # ------------------------------------------------------------------
    # Telemetry plumbing
    # ------------------------------------------------------------------

    def _make_registry(self, **labels: str) -> "MetricsRegistry | None":
        """A labeled registry (auto-registered with the aggregator), or
        None when telemetry is off."""
        telemetry = self.telemetry
        if telemetry is None:
            return None
        registry = MetricsRegistry(
            labels={"gateway": telemetry.gateway, **labels}
        )
        if telemetry.aggregator is not None:
            telemetry.aggregator.register(registry)
        return registry

    def _tenant_registry(self, worker: "DpuWorker",
                         tenant: "str | None") -> "MetricsRegistry | None":
        telemetry = self.telemetry
        if telemetry is None:
            return None
        key = (worker.name, tenant or telemetry.default_tenant)
        registry = self._tenant_registries.get(key)
        if registry is None:
            registry = self._make_registry(worker=key[0], tenant=key[1])
            self._tenant_registries[key] = registry
        return registry

    @property
    def registries(self) -> "tuple[MetricsRegistry, ...]":
        """Every labeled registry this gateway owns (telemetry on)."""
        members = [w.registry for w in self.workers if w.registry is not None]
        members.extend(self._tenant_registries.values())
        return tuple(members)

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------

    def submit(self, request: ServeRequest) -> ServeTicket:
        """Offer one request; returns its ticket (``.shed`` if refused).

        The real codec work happens here, before admission-shed
        requests are turned away — shed requests cost nothing, and
        admitted requests' output bytes are pinned down before the
        simulation schedules anything.
        """
        self.submitted += 1
        get_metrics().inc("serve.requests")
        if not self.admission.try_admit():
            return ServeTicket(request, None)
        if request.req_id is None:
            request = dataclasses.replace(request, req_id=self._auto_id)
            self._auto_id += 1
        entry = self._make_entry(request)
        self._inflight.add(entry.event)
        self.batcher.add(entry)
        return ServeTicket(request, entry.event)

    def drain(self) -> Generator:
        """Flush partial batches and wait out every admitted request —
        completed *or* failed.  A failing request (worker died with no
        replica, engine exhausted) fails the in-flight barrier; the
        drain absorbs it and keeps waiting on the survivors rather than
        surfacing one request's error to whoever is draining."""
        self.batcher.flush_all()
        while self._inflight:
            try:
                yield self.env.all_of(list(self._inflight))
            except BaseException:
                continue

    def kill_worker(self, name: str) -> DpuWorker:
        """Kill the named worker (fault injection / cluster failover).

        Routers stop picking it immediately.  With ``failover`` enabled
        in :class:`ServeConfig`, batches in flight on it lose their
        death race (:class:`~repro.errors.WorkerDiedError` internally)
        and re-dispatch to a surviving replica — or fail their tickets
        with :class:`~repro.errors.NoCapableWorkerError` when none is
        left.  Without ``failover`` the kill only stops *new*
        placements: in-flight batches run to completion against the
        cost model (their bytes were pinned at submit).  Either way
        every admitted request releases its admission slot exactly
        once.
        """
        for worker in self.workers:
            if worker.name == name:
                worker.kill()
                get_metrics().inc("serve.worker_kills")
                return worker
        raise ValueError(f"no worker named {name!r} in this gateway")

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    @property
    def latencies(self) -> "tuple[float, ...]":
        return tuple(self._latencies)

    @property
    def sample_count(self) -> int:
        """Completed-request latency observations backing the
        percentiles.  Zero means "no samples yet" — consumers (e.g.
        the bench rows) must report that state explicitly instead of
        a ``nan`` that is indistinguishable from a 0.0 latency."""
        return self.latency_sketch.count

    def latency_percentile(self, q: float) -> float:
        """Sketch-backed percentile (``q`` in [0, 100]) of completed
        request latencies, within the sketch's relative-error bound
        (``alpha``, default 1 %) of the exact nearest-rank value.

        Raises :class:`~repro.errors.NoLatencySamplesError` (a
        :class:`ValueError` subclass) when no request has completed
        yet — e.g. at very low offered load before the first drain;
        check :attr:`sample_count` to branch without catching.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile {q} outside [0, 100]")
        if self.latency_sketch.count == 0:
            raise NoLatencySamplesError("no completed requests yet")
        return self.latency_sketch.quantile(q / 100.0)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _codec(self, algo: Algo):
        """(compress, decompress) callables for a request's algo."""
        if algo is Algo.DEFLATE:
            return (
                lambda raw: deflate_compress(raw, self.config.deflate),
                deflate_decompress,
            )
        if algo is Algo.LZ4:
            return lz4_compress, lz4_decompress
        if algo is Algo.AC:
            ac_config = self.config.ac
            return (
                lambda raw: ac_compress(raw, ac_config),
                ac_decompress,
            )
        raise ValueError(
            f"gateway cannot serve algo {algo.value!r} "
            "(lossless byte codecs only: deflate, lz4, ac)"
        )

    def _make_entry(self, request: ServeRequest) -> BatchEntry:
        """Run the real codec and fix the two-domain billing sizes."""
        compress, decompress = self._codec(request.algo)
        if request.direction is Direction.COMPRESS:
            output = compress(request.payload)
            sim_in = float(
                len(request.payload) if request.sim_bytes is None
                else request.sim_bytes
            )
            engine_sim = soc_sim = sim_in
        else:
            output = decompress(request.payload)
            sim_out = float(
                len(output) if request.sim_bytes is None else request.sim_bytes
            )
            # The engine ingests the compressed stream on decompress;
            # scale its actual size into the simulated domain.
            scale = sim_out / len(output) if output else 1.0
            engine_sim = len(request.payload) * scale
            soc_sim = sim_out
        return BatchEntry(
            request=request,
            output=output,
            engine_sim_bytes=engine_sim,
            soc_sim_bytes=soc_sim,
            accepted_s=self.env.now,
            event=self.env.event(),
        )

    def _dispatch(self, batch: Batch) -> None:
        """Batcher flush callback: route and launch the batch.

        A routing dead-end (every capable worker dead — possible when a
        deadline timer flushes after a kill) must not escape into the
        batcher's timer process: it would strand the open batch AND leak
        its admission slots.  Fail the batch's tickets here instead.
        """
        try:
            worker = self.router.pick(self.workers, batch)
        except NoCapableWorkerError as exc:
            self._fail_batch(batch, exc)
            return
        self.routing_log.append((batch.batch_id, "dispatch", worker.name))
        self.env.process(
            self._run_batch(worker, batch),
            name=f"serve:batch:{batch.batch_id}",
        )

    def _fail_batch(self, batch: Batch, exc: BaseException) -> None:
        """Fail every ticket in ``batch``, releasing each admission slot
        exactly once (the leak this guards against: a batch that failed
        *after* admission kept its slots forever)."""
        for entry in batch.entries:
            self.admission.complete()
            self._inflight.discard(entry.event)
            if not entry.event.triggered:
                entry.event.fail(exc)

    def _run_batch(self, worker: DpuWorker, batch: Batch) -> Generator:
        job = EngineJob(
            batch.algo,
            batch.direction,
            batch.engine_sim_bytes,
            payload=batch.payload,
            tag=batch.batch_id,
            soc_sim_bytes=batch.soc_sim_bytes,
        )
        metrics = get_metrics()
        span_index: "int | None" = None
        try:
            while True:
                try:
                    with device_span(
                        "serve.batch",
                        worker.device,
                        batch=batch.batch_id,
                        direction=batch.direction.value,
                        msgs=batch.size,
                        sim_bytes=batch.engine_sim_bytes,
                    ) as span:
                        if span.recording:
                            span_index = span.index
                        completion = worker.scheduler.submit(job).event
                        if not self.config.failover:
                            outcome = yield completion
                        else:
                            # Race the job against whole-worker death.  A
                            # losing completion that fires later is ignored
                            # (the orphan job finishes against a dead
                            # device; its bytes were fixed at submit).
                            winner, value = yield self.env.any_of(
                                [completion, worker.died]
                            )
                            if winner is not completion:
                                raise WorkerDiedError(worker.name)
                            outcome = value
                    break
                except WorkerDiedError:
                    # Re-dispatch to a surviving replica; raises
                    # NoCapableWorkerError into the outer handler when
                    # nobody is left.
                    metrics.inc("serve.failovers")
                    worker = self.router.pick(self.workers, batch)
                    self.routing_log.append(
                        (batch.batch_id, "failover", worker.name)
                    )
        except BaseException as exc:
            # Without SoC fallback an exhausted engine job surfaces its
            # DOCA error here; fan it out so no ticket waits forever.
            self._fail_batch(batch, exc)
            return
        now = self.env.now
        worker.batches_served += 1
        worker.requests_served += batch.size
        for entry in batch.entries:
            response = ServeResponse(
                req_id=entry.request.req_id,
                direction=batch.direction,
                payload=entry.output,
                device=worker.name,
                engine=outcome.engine,
                accepted_s=entry.accepted_s,
                completed_s=now,
                batch_id=batch.batch_id,
                batch_size=batch.size,
            )
            self.completed += 1
            self.completed_sim_bytes += entry.soc_sim_bytes
            self._latencies.append(response.latency_s)
            self.latency_sketch.add(response.latency_s, exemplar=span_index)
            metrics.observe("serve.latency_s", response.latency_s)
            tenant_registry = self._tenant_registry(
                worker, entry.request.tenant
            )
            if tenant_registry is not None:
                tenant_registry.observe(
                    LATENCY_METRIC, response.latency_s, exemplar=span_index
                )
                tenant_registry.inc(GOODPUT_COUNTER, entry.soc_sim_bytes)
            self.admission.complete()
            self._inflight.discard(entry.event)
            entry.event.succeed(response)
