"""Request/response/ticket types for the serving gateway."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.dpu.specs import Algo, Direction
from repro.errors import AdmissionError

if TYPE_CHECKING:
    from repro.sim.engine import Event

__all__ = ["ServeRequest", "ServeResponse", "ServeTicket"]


@dataclass(frozen=True)
class ServeRequest:
    """One client message for the gateway.

    ``payload`` is the real bytes the codec sees (raw data on the
    compress direction, a DEFLATE stream on decompress); ``sim_bytes``
    is the nominal *uncompressed* size the cost model charges for —
    the same two-domain convention the rest of the runtime uses.

    ``tenant`` (optional) names the client the request belongs to; the
    telemetry plane records latency/goodput into per-tenant labeled
    registries so the SLO monitor can burn budgets per tenant.

    ``algo`` picks the lossless codec (DEFLATE, LZ4, or the adaptive
    -context ``ac`` coder).  Mixed-algo traffic batches separately per
    (direction, algo) so every batch stays a single engine job.
    """

    direction: Direction
    payload: bytes
    sim_bytes: float | None = None
    req_id: object = None
    tenant: str | None = None
    algo: Algo = Algo.DEFLATE

    def __post_init__(self) -> None:
        if self.sim_bytes is not None and self.sim_bytes < 0:
            raise ValueError(f"negative sim_bytes {self.sim_bytes}")


@dataclass(frozen=True)
class ServeResponse:
    """Completion record handed back through a request's ticket."""

    req_id: object
    direction: Direction
    payload: bytes          # compressed (or decompressed) output bytes
    device: str             # device the batch executed on
    engine: str             # "cengine" | "soc" (post work-steal truth)
    accepted_s: float       # sim time the request was admitted
    completed_s: float      # sim time its batch drained
    batch_id: int
    batch_size: int

    @property
    def latency_s(self) -> float:
        return self.completed_s - self.accepted_s


class ServeTicket:
    """Handle to one submitted request (awaitable from any process).

    A shed request (admission control refused it) still gets a ticket so
    callers can branch on ``accepted`` — but waiting on a shed ticket is
    a programming error and raises :class:`~repro.errors.AdmissionError`
    immediately: the gateway will never complete it.
    """

    __slots__ = ("request", "accepted", "_event")

    def __init__(self, request: ServeRequest, event: "Event | None") -> None:
        self.request = request
        self.accepted = event is not None
        self._event = event

    @property
    def shed(self) -> bool:
        return not self.accepted

    @property
    def event(self) -> "Event":
        if self._event is None:
            raise AdmissionError(
                "request was shed by admission control; no completion event"
            )
        return self._event

    @property
    def done(self) -> bool:
        return self._event is not None and self._event.processed

    def wait(self) -> Generator:
        """Yield until the request completes; returns its
        :class:`ServeResponse`."""
        response = yield self.event
        return response
