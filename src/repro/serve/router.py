"""Pluggable batch→device sharding policies.

All routers are deterministic: ties break on fleet order, so a given
request trace always produces the same placement (and therefore the
same sim timeline), which the regression bench depends on.

``capability`` is the policy the paper's capability matrix implies:
BF-3's C-Engine is decompress-only (Tables II/III), so a mixed BF-2/BF-3
fleet should steer decompress batches at BF-3 (where the faster engine,
161 µs overhead vs 1 ms, pays off) and compress batches at BF-2 — under
the other policies a compress batch landing on BF-3 silently falls back
to the SoC.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.errors import NoCapableWorkerError

if TYPE_CHECKING:
    from repro.serve.batcher import Batch
    from repro.serve.gateway import DpuWorker

__all__ = [
    "Router",
    "RoundRobinRouter",
    "LeastQueueDepthRouter",
    "CapabilityAwareRouter",
    "CostAwareRouter",
    "ROUTERS",
    "make_router",
]


class Router:
    """Base class: pick a worker for each flushed batch.

    Routers may hold private per-gateway state (the round-robin cursor,
    cost-model caches); gateways that are handed a *shared instance*
    call :meth:`clone` so two gateways over one worker pool never alias
    one cursor.
    """

    name = "base"

    def pick(self, workers: "Sequence[DpuWorker]", batch: "Batch") -> "DpuWorker":
        raise NotImplementedError

    def clone(self) -> "Router":
        """A fresh router of the same policy with pristine private state."""
        return type(self)()

    @staticmethod
    def _alive(workers: "Sequence[DpuWorker]") -> "list[DpuWorker]":
        """Workers still accepting batches (test doubles without an
        ``alive`` attribute count as alive)."""
        return [w for w in workers if getattr(w, "alive", True)]

    @staticmethod
    def _least_loaded(workers: "Sequence[DpuWorker]",
                      batch: "Batch | None" = None) -> "DpuWorker":
        if not workers:
            raise NoCapableWorkerError(
                getattr(batch, "direction", ""), getattr(batch, "algo", None)
            )
        best = workers[0]
        for worker in workers[1:]:
            if worker.load < best.load:  # strict: first wins ties
                best = worker
        return best

    @staticmethod
    def _capable(workers: "Sequence[DpuWorker]",
                 batch: "Batch") -> "list[DpuWorker]":
        """Workers whose engine natively runs this batch (empty for
        SoC-only algos like ``ac`` — callers fall back to the fleet)."""
        algo = getattr(batch, "algo", None)
        if algo is None:
            return [w for w in workers if w.supports(batch.direction)]
        return [w for w in workers if w.supports(batch.direction, algo)]


class RoundRobinRouter(Router):
    """Cycle through the fleet regardless of load or capability.

    The cursor is instance state: each gateway owns its own router (see
    :meth:`Router.clone`), so gateways sharing one worker pool advance
    independent cursors and stay individually deterministic.
    """

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def pick(self, workers, batch):
        alive = self._alive(workers)
        if not alive:
            raise NoCapableWorkerError(
                getattr(batch, "direction", ""), getattr(batch, "algo", None)
            )
        worker = alive[self._next % len(alive)]
        self._next += 1
        return worker


class LeastQueueDepthRouter(Router):
    """Send each batch to the device with the fewest jobs in flight or
    queued (join-the-shortest-queue; first device wins ties)."""

    name = "least_queue_depth"

    def pick(self, workers, batch):
        return self._least_loaded(self._alive(workers), batch)


class CapabilityAwareRouter(Router):
    """Least-queue-depth over the devices whose C-Engine natively
    supports the batch's direction; the whole fleet if none does (the
    scheduler's SoC fallback still completes the work)."""

    name = "capability"

    def pick(self, workers, batch):
        alive = self._alive(workers)
        capable = self._capable(alive, batch)
        return self._least_loaded(capable or alive, batch)


class CostAwareRouter(Router):
    """Composes the capability filter with the :mod:`repro.select`
    cost model: each capable worker is scored by the predicted exec
    time of this batch's job on its cheapest lane, scaled by the
    worker's queue depth (``cost x (load + 1)`` — an M/D/1-flavored
    wait estimate), and the lowest score wins (fleet order on ties).

    Unlike :class:`CapabilityAwareRouter` this sees *magnitudes*: a
    BF-3 decompress batch is not just "capable", it is ~6x cheaper per
    job than BF-2 (161 us vs 1 ms overhead), so under mixed load the
    fleet's faster engines absorb proportionally more work.
    """

    name = "cost_aware"

    def __init__(self) -> None:
        # One selector per device object; devices may share a name
        # across fleets, so key by identity.
        self._selectors: dict[int, object] = {}

    def _selector(self, worker: "DpuWorker"):
        from repro.select import PathSelector

        key = id(worker.device)
        selector = self._selectors.get(key)
        if selector is None:
            selector = self._selectors[key] = PathSelector(worker.device)
        return selector

    def pick(self, workers, batch):
        alive = self._alive(workers)
        capable = self._capable(alive, batch)
        if not capable and not alive:
            raise NoCapableWorkerError(
                getattr(batch, "direction", ""), getattr(batch, "algo", None)
            )
        best = None
        best_score = None
        from repro.dpu.specs import Algo

        algo = getattr(batch, "algo", Algo.DEFLATE)
        for worker in capable or alive:
            costs = self._selector(worker).job_costs(
                algo, batch.direction,
                batch.engine_sim_bytes, batch.soc_sim_bytes,
            )
            score = min(costs.values()) * (worker.load + 1.0)
            if best_score is None or score < best_score:  # first wins ties
                best = worker
                best_score = score
        return best


ROUTERS = {
    cls.name: cls
    for cls in (
        RoundRobinRouter,
        LeastQueueDepthRouter,
        CapabilityAwareRouter,
        CostAwareRouter,
    )
}


def make_router(spec: "str | Router") -> Router:
    """Resolve a router name (or pass an instance through)."""
    if isinstance(spec, Router):
        return spec
    try:
        return ROUTERS[spec]()
    except KeyError:
        raise ValueError(
            f"unknown router {spec!r} (known: {sorted(ROUTERS)})"
        ) from None
