"""Pluggable batch→device sharding policies.

All routers are deterministic: ties break on fleet order, so a given
request trace always produces the same placement (and therefore the
same sim timeline), which the regression bench depends on.

``capability`` is the policy the paper's capability matrix implies:
BF-3's C-Engine is decompress-only (Tables II/III), so a mixed BF-2/BF-3
fleet should steer decompress batches at BF-3 (where the faster engine,
161 µs overhead vs 1 ms, pays off) and compress batches at BF-2 — under
the other policies a compress batch landing on BF-3 silently falls back
to the SoC.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:
    from repro.serve.batcher import Batch
    from repro.serve.gateway import DpuWorker

__all__ = [
    "Router",
    "RoundRobinRouter",
    "LeastQueueDepthRouter",
    "CapabilityAwareRouter",
    "ROUTERS",
    "make_router",
]


class Router:
    """Base class: pick a worker for each flushed batch."""

    name = "base"

    def pick(self, workers: "Sequence[DpuWorker]", batch: "Batch") -> "DpuWorker":
        raise NotImplementedError

    @staticmethod
    def _least_loaded(workers: "Sequence[DpuWorker]") -> "DpuWorker":
        best = workers[0]
        for worker in workers[1:]:
            if worker.load < best.load:  # strict: first wins ties
                best = worker
        return best


class RoundRobinRouter(Router):
    """Cycle through the fleet regardless of load or capability."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def pick(self, workers, batch):
        worker = workers[self._next % len(workers)]
        self._next += 1
        return worker


class LeastQueueDepthRouter(Router):
    """Send each batch to the device with the fewest jobs in flight or
    queued (join-the-shortest-queue; first device wins ties)."""

    name = "least_queue_depth"

    def pick(self, workers, batch):
        return self._least_loaded(workers)


class CapabilityAwareRouter(Router):
    """Least-queue-depth over the devices whose C-Engine natively
    supports the batch's direction; the whole fleet if none does (the
    scheduler's SoC fallback still completes the work)."""

    name = "capability"

    def pick(self, workers, batch):
        capable = [w for w in workers if w.supports(batch.direction)]
        return self._least_loaded(capable or workers)


ROUTERS = {
    cls.name: cls
    for cls in (RoundRobinRouter, LeastQueueDepthRouter, CapabilityAwareRouter)
}


def make_router(spec: "str | Router") -> Router:
    """Resolve a router name (or pass an instance through)."""
    if isinstance(spec, Router):
        return spec
    try:
        return ROUTERS[spec]()
    except KeyError:
        raise ValueError(
            f"unknown router {spec!r} (known: {sorted(ROUTERS)})"
        ) from None
