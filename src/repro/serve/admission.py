"""Bounded admission control with explicit load shedding.

The gateway admits at most ``max_pending`` requests at a time — pending
means admitted but not yet completed (queued in the batcher, queued at a
device, or executing).  Beyond that the gateway *sheds*: the submit
returns a refused ticket immediately instead of queueing unboundedly.
That keeps queue depth — and therefore tail latency — bounded under
overload, which is the backpressure half of the serving story: goodput
saturates, it does not collapse.
"""

from __future__ import annotations

from repro.obs import QUEUE_DEPTH_BUCKETS, get_metrics

__all__ = ["AdmissionController"]


class AdmissionController:
    """Counting semaphore over pending requests, with shed accounting."""

    def __init__(self, max_pending: int) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.max_pending = max_pending
        self.pending = 0
        self.peak_pending = 0
        self.accepted = 0
        self.shed = 0

    def try_admit(self) -> bool:
        """Admit one request if there is room; returns False to shed."""
        metrics = get_metrics()
        if self.pending >= self.max_pending:
            self.shed += 1
            metrics.inc("serve.shed")
            return False
        self.pending += 1
        self.accepted += 1
        if self.pending > self.peak_pending:
            self.peak_pending = self.pending
        metrics.inc("serve.accepted")
        metrics.set_gauge("serve.pending", self.pending)
        metrics.observe("serve.pending_depth", self.pending,
                        boundaries=QUEUE_DEPTH_BUCKETS)
        return True

    def complete(self) -> None:
        """Release one admitted request's slot."""
        if self.pending <= 0:
            raise RuntimeError("admission completed with nothing pending")
        self.pending -= 1
        get_metrics().set_gauge("serve.pending", self.pending)
