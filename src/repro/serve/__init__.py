"""``repro.serve`` — a multi-DPU serving gateway (batching + backpressure).

The deployment-shaped layer above :mod:`repro.sched`: an async request
gateway fronting a *fleet* of simulated BlueField devices on one sim
clock.  Small requests coalesce into batches (amortizing the C-Engine's
fixed per-job overhead, the ZipLine argument the paper's §V-B overhead
numbers imply), batches shard across the fleet under a pluggable
routing policy, and a bounded admission queue sheds overload instead of
growing tails without bound.

Quick tour::

    from repro import Environment, make_device
    from repro.serve import ServeGateway, ServeRequest
    from repro.dpu.specs import Direction

    env = Environment()
    gw = ServeGateway(env, [make_device(env, "bf2"), make_device(env, "bf3")])

    def client(env):
        ticket = gw.submit(ServeRequest(Direction.COMPRESS, b"hello" * 1000))
        response = yield from ticket.wait()
        ...
        yield from gw.drain()

    env.run(until=env.process(client(env)))
"""

from repro.serve.admission import AdmissionController
from repro.serve.batcher import Batch, BatchEntry, Batcher, BatchPolicy
from repro.serve.gateway import (
    DpuWorker,
    ServeConfig,
    ServeGateway,
    TelemetryConfig,
)
from repro.serve.request import ServeRequest, ServeResponse, ServeTicket
from repro.serve.router import (
    ROUTERS,
    CapabilityAwareRouter,
    CostAwareRouter,
    LeastQueueDepthRouter,
    RoundRobinRouter,
    Router,
    make_router,
)
from repro.serve.streaming import StreamingSession

__all__ = [
    "AdmissionController",
    "Batch",
    "BatchEntry",
    "Batcher",
    "BatchPolicy",
    "CapabilityAwareRouter",
    "CostAwareRouter",
    "DpuWorker",
    "LeastQueueDepthRouter",
    "ROUTERS",
    "RoundRobinRouter",
    "Router",
    "ServeConfig",
    "ServeGateway",
    "ServeRequest",
    "ServeResponse",
    "ServeTicket",
    "StreamingSession",
    "TelemetryConfig",
    "make_router",
]
