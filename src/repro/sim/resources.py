"""Waitable resources for the DES kernel.

:class:`Resource`
    A FIFO server pool with fixed capacity — models the C-Engine's job
    queue (capacity 1 per engine) and SoC core pools.
:class:`Store`
    An unbounded FIFO item queue with blocking ``get`` — models MPI
    unexpected-message queues and DOCA work-queue completions.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.errors import SimulationError
from repro.obs.metrics import QUEUE_DEPTH_BUCKETS, get_metrics
from repro.sim.engine import Environment, Event

__all__ = ["Resource", "Store"]


class Request(Event):
    """Grant event for one unit of a :class:`Resource`."""

    __slots__ = ("resource", "requested_at")

    def __init__(self, env: Environment, resource: "Resource") -> None:
        super().__init__(env)
        self.resource = resource
        # Sim time of the request, so holders can derive queueing delay
        # (granted_at - requested_at) without extra bookkeeping.
        self.requested_at = env.now


class Resource:
    """FIFO resource with ``capacity`` concurrent holders.

    Usage inside a process generator::

        req = resource.request()
        yield req
        try:
            yield env.timeout(service_time)
        finally:
            resource.release(req)
    """

    def __init__(self, env: Environment, capacity: int = 1,
                 obs_name: "str | None" = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        # Metric prefix for queue-depth observations (None = unobserved).
        self.obs_name = obs_name
        self._holders: set[Request] = set()
        self._waiting: deque[Request] = deque()

    @property
    def in_use(self) -> int:
        return len(self._holders)

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def request(self) -> Request:
        """Request one unit; the returned event fires when granted."""
        req = Request(self.env, self)
        if len(self._holders) < self.capacity:
            self._holders.add(req)
            req.succeed()
        else:
            self._waiting.append(req)
        if self.obs_name is not None:
            metrics = get_metrics()
            if metrics.recording:
                metrics.observe(
                    f"{self.obs_name}.queue_depth",
                    float(len(self._waiting)),
                    QUEUE_DEPTH_BUCKETS,
                )
        return req

    def release(self, req: Request) -> None:
        """Release a previously granted unit."""
        if req in self._holders:
            self._holders.discard(req)
        else:
            # Cancelling a queued request is allowed.
            try:
                self._waiting.remove(req)
                return
            except ValueError:
                raise SimulationError("release of a request not held or queued")
        while self._waiting and len(self._holders) < self.capacity:
            nxt = self._waiting.popleft()
            self._holders.add(nxt)
            nxt.succeed()


class Store:
    """Unbounded FIFO store: ``put`` never blocks, ``get`` may."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``, waking the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next item (immediately if available)."""
        ev = Event(self.env)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev
