"""Phase-time accounting for the reproduced time-distribution figures.

Fig. 7 and Fig. 9 of the paper break execution time into named phases
(DOCA init, buffer preparation, compression, decompression).
:class:`TimeBreakdown` is the accumulator every simulated operation
reports into; the bench harness renders them as stacked fractions.

Since the ``repro.obs`` span tracer landed, the breakdown is a
*consumer view* over the same phase charges: an operation binds its
breakdown to its tracing span (:meth:`TimeBreakdown.bind`), every
:meth:`add` forwards the ``(phase, seconds)`` charge to that span, and
:meth:`TimeBreakdown.from_spans` re-derives an identical breakdown from
a recorded trace.  With tracing disabled (the default) nothing is
forwarded and the class behaves exactly as it always has.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:
    from repro.obs.tracer import Span

__all__ = ["TimeBreakdown"]


class TimeBreakdown:
    """Ordered accumulation of time per named phase (seconds)."""

    def __init__(self) -> None:
        self._phases: "OrderedDict[str, float]" = OrderedDict()
        self._span = None

    def bind(self, span: "Span") -> "TimeBreakdown":
        """Mirror subsequent :meth:`add` charges onto ``span``; returns self.

        Binding a non-recording span (the disabled-tracing null span)
        is a no-op, so callers bind unconditionally.
        """
        self._span = span if getattr(span, "recording", False) else None
        return self

    def add(self, phase: str, seconds: float) -> None:
        """Accumulate ``seconds`` into ``phase``."""
        if seconds < 0:
            raise ValueError(f"negative phase duration {seconds} for {phase!r}")
        self._phases[phase] = self._phases.get(phase, 0.0) + seconds
        if self._span is not None:
            self._span.phase(phase, seconds)

    def merge(self, other: "TimeBreakdown") -> "TimeBreakdown":
        """Accumulate all phases of ``other`` into self; returns self.

        A pure view operation: merged charges were already recorded
        under their originating spans, so nothing is re-forwarded.
        """
        for phase, seconds in other._phases.items():
            self._phases[phase] = self._phases.get(phase, 0.0) + seconds
        return self

    @classmethod
    def from_spans(cls, spans: "Iterable[Span]") -> "TimeBreakdown":
        """Rebuild a breakdown from recorded spans' phase charges.

        Spans should be supplied in creation order (as
        ``Tracer.spans`` / ``Tracer.subtree`` yield them); phase charges
        then accumulate in the same order the original ``add`` calls
        made, reproducing the legacy accumulator exactly.
        """
        tb = cls()
        for span in spans:
            for phase, seconds in span.phases:
                tb._phases[phase] = tb._phases.get(phase, 0.0) + seconds
        return tb

    def get(self, phase: str) -> float:
        return self._phases.get(phase, 0.0)

    def total(self) -> float:
        return sum(self._phases.values())

    def fraction(self, *phases: str) -> float:
        """Combined share of ``phases`` in the total (0 when empty)."""
        total = self.total()
        if total == 0:
            return 0.0
        return sum(self._phases.get(p, 0.0) for p in phases) / total

    def as_dict(self) -> dict[str, float]:
        return dict(self._phases)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:.6g}s" for k, v in self._phases.items())
        return f"TimeBreakdown({inner})"
