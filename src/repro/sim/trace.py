"""Phase-time accounting for the reproduced time-distribution figures.

Fig. 7 and Fig. 9 of the paper break execution time into named phases
(DOCA init, buffer preparation, compression, decompression).
:class:`TimeBreakdown` is the accumulator every simulated operation
reports into; the bench harness renders them as stacked fractions.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["TimeBreakdown"]


class TimeBreakdown:
    """Ordered accumulation of time per named phase (seconds)."""

    def __init__(self) -> None:
        self._phases: "OrderedDict[str, float]" = OrderedDict()

    def add(self, phase: str, seconds: float) -> None:
        """Accumulate ``seconds`` into ``phase``."""
        if seconds < 0:
            raise ValueError(f"negative phase duration {seconds} for {phase!r}")
        self._phases[phase] = self._phases.get(phase, 0.0) + seconds

    def merge(self, other: "TimeBreakdown") -> "TimeBreakdown":
        """Accumulate all phases of ``other`` into self; returns self."""
        for phase, seconds in other._phases.items():
            self.add(phase, seconds)
        return self

    def get(self, phase: str) -> float:
        return self._phases.get(phase, 0.0)

    def total(self) -> float:
        return sum(self._phases.values())

    def fraction(self, *phases: str) -> float:
        """Combined share of ``phases`` in the total (0 when empty)."""
        total = self.total()
        if total == 0:
            return 0.0
        return sum(self._phases.get(p, 0.0) for p in phases) / total

    def as_dict(self) -> dict[str, float]:
        return dict(self._phases)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:.6g}s" for k, v in self._phases.items())
        return f"TimeBreakdown({inner})"
