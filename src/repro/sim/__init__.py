"""A small discrete-event simulation (DES) kernel.

The hardware model (:mod:`repro.dpu`) and the simulated MPI runtime
(:mod:`repro.mpi`) run on this kernel: simulated processes are Python
generators that ``yield`` events (timeouts, resource grants, store
gets), and the environment advances a virtual clock between event
firings.  The design follows SimPy's coroutine model (SimPy itself is
not available offline), trimmed to the primitives this project needs.

Public API
----------
:class:`Environment`, :class:`Event`, :class:`Timeout`, :class:`Process`,
:class:`AllOf`, :class:`AnyOf` from :mod:`repro.sim.engine`;
:class:`Resource`, :class:`Store` from :mod:`repro.sim.resources`;
:class:`TimeBreakdown` from :mod:`repro.sim.trace`.
"""

from repro.sim.engine import AllOf, AnyOf, Environment, Event, Process, Timeout
from repro.sim.resources import Resource, Store
from repro.sim.trace import TimeBreakdown

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Process",
    "Resource",
    "Store",
    "TimeBreakdown",
    "Timeout",
]
