"""Discrete-event simulation kernel: environment, events, processes.

Processes are generators that yield :class:`Event` objects.  When a
yielded event *fires*, the generator is resumed with the event's value
(or the event's exception is thrown into it).  The environment pops
events off a time-ordered heap; simultaneous events fire in scheduling
order (a monotonically increasing sequence number breaks ties), which
makes runs fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

from repro.errors import SimDeadlockError, SimulationError

__all__ = ["Environment", "Event", "Timeout", "Process", "AllOf", "AnyOf"]

SimGenerator = Generator["Event", Any, Any]


class Event:
    """A one-shot occurrence with callbacks and an optional value."""

    __slots__ = ("env", "callbacks", "_value", "_exc", "_triggered", "_processed")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._exc: BaseException | None = None
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        if self._exc is not None:
            raise self._exc
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Schedule this event to fire successfully after ``delay``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.env._schedule(self, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Schedule this event to fire with an exception."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._exc = exc
        self.env._schedule(self, delay)
        return self


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout {delay}")
        super().__init__(env)
        self._triggered = True
        self._value = value
        env._schedule(self, delay)


class Process(Event):
    """A running generator; fires (as an event) when the generator returns."""

    __slots__ = ("_generator", "name", "_target")

    def __init__(self, env: "Environment", generator: SimGenerator, name: str = "") -> None:
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: resume the generator at the current time.
        boot = Event(env)
        self._target: Event | None = boot
        boot.callbacks.append(self._resume)
        boot.succeed()

    def _resume(self, trigger: Event) -> None:
        if trigger is not self._target:
            return  # stale wakeup (e.g. the event an interrupted wait held)
        while True:
            try:
                if trigger is not None and trigger._exc is not None:
                    target = self._generator.throw(trigger._exc)
                else:
                    value = None if trigger is None else trigger._value
                    target = self._generator.send(value)
            except StopIteration as stop:
                if not self._triggered:
                    self.succeed(stop.value)
                return
            except BaseException as exc:  # propagate failures to waiters
                if not self._triggered:
                    self.fail(exc)
                    return
                raise
            if not isinstance(target, Event):
                # Loop around with a synthetic failed trigger so the
                # error is thrown into the generator under the same
                # StopIteration/exception handling as real events.
                bad = Event(self.env)
                bad._triggered = True
                bad._exc = SimulationError(
                    f"process yielded non-event {target!r}"
                )
                trigger = bad
                continue
            if target._processed:
                # Already fired: loop and resume immediately with its value.
                self._target = target
                trigger = target
                continue
            self._target = target
            target.callbacks.append(self._resume)
            return

    def interrupt(self, reason: str = "") -> None:
        """Throw :class:`SimulationError` into the process at the next step."""
        punch = Event(self.env)
        self._target = punch
        punch.callbacks.append(self._resume)
        punch.fail(SimulationError(f"interrupted: {reason}"))


class AllOf(Event):
    """Fires when all given events have fired; value is their value list."""

    __slots__ = ("_pending", "_events")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._pending = 0
        for ev in self._events:
            if not ev._processed:
                self._pending += 1
                ev.callbacks.append(self._on_child)
        if self._pending == 0:
            self.succeed([ev.value for ev in self._events])

    def _on_child(self, child: Event) -> None:
        if self._triggered:
            return
        if child._exc is not None:
            self.fail(child._exc)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([ev._value for ev in self._events])


class AnyOf(Event):
    """Fires when the first of the given events fires.

    The value is ``(winner, winner.value)`` so waiters can tell *which*
    event won the race without re-inspecting every candidate.  A failing
    child fails the race with the child's exception.  Children that fire
    after the race is decided are ignored — they are not cancelled, so
    side effects of losing events still happen in the background.
    """

    __slots__ = ("_events",)

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        if not self._events:
            raise SimulationError("AnyOf requires at least one event")
        for ev in self._events:
            if ev._processed:
                # Already fired: the race is decided at construction.
                self._on_child(ev)
                break
            ev.callbacks.append(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self._triggered:
            return
        if child._exc is not None:
            self.fail(child._exc)
            return
        self.succeed((child, child._value))


class Environment:
    """The event loop: a time-ordered heap of (time, seq, event)."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))
        self._seq += 1

    def event(self) -> Event:
        """A fresh untriggered event (to be succeeded/failed manually)."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: SimGenerator, name: str = "") -> Process:
        """Register a generator as a simulated process."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event firing once every event in ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event firing when the first event in ``events`` fires."""
        return AnyOf(self, events)

    def step(self) -> None:
        """Fire the next scheduled event."""
        when, _seq, event = heapq.heappop(self._queue)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = []
        event._processed = True
        for callback in callbacks:
            callback(event)

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        * ``until`` is ``None`` — run until no events remain.
        * ``until`` is a number — run until the clock would pass it.
        * ``until`` is an :class:`Event` — run until that event fires and
          return its value; raise :class:`SimDeadlockError` if the queue
          drains first.
        """
        if isinstance(until, Event):
            target = until
            while not target._processed:
                if not self._queue:
                    raise SimDeadlockError(
                        "event queue drained before awaited event fired"
                    )
                self.step()
            return target.value
        horizon = float("inf") if until is None else float(until)
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        if until is not None:
            self._now = max(self._now, horizon) if self._queue else self._now
        return None
