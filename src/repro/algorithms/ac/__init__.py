"""Adaptive-context range coder (the ``ac`` lossless codec).

EDPC-style probability-model + entropy-coder backend: a chunk-adaptive
hashed order-N byte-context model (:mod:`~repro.algorithms.ac.model`)
feeding a from-scratch carry-aware range coder
(:mod:`~repro.algorithms.ac.rangecoder`), with the two stages decoupled
behind a bounded batch queue (:mod:`~repro.algorithms.ac.codec`).  A
deliberately-simple bitwise arithmetic coder
(:mod:`~repro.algorithms.ac.reference`) serves as the differential
oracle.

Like every codec under :mod:`repro.algorithms`, this is pure bytes-in /
bytes-out and knows nothing about DPUs; the simulated-hardware pipeline
twin lives in :mod:`repro.sched.decoupled` and placement/pricing in
:mod:`repro.core` / :mod:`repro.select`.
"""

from repro.algorithms.ac.codec import (
    CodingBatch,
    DEFAULT_CONFIG,
    HEADER_BYTES,
    MAGIC,
    ac_compress,
    ac_compress_pipelined,
    ac_decompress,
    encode_batches,
    model_batches,
    parse_header,
)
from repro.algorithms.ac.model import ACConfig, ContextModel
from repro.algorithms.ac.rangecoder import RangeDecoder, RangeEncoder

__all__ = [
    "ACConfig",
    "CodingBatch",
    "ContextModel",
    "DEFAULT_CONFIG",
    "HEADER_BYTES",
    "MAGIC",
    "RangeDecoder",
    "RangeEncoder",
    "ac_compress",
    "ac_compress_pipelined",
    "ac_decompress",
    "encode_batches",
    "model_batches",
    "parse_header",
]
