"""Chunk-adaptive order-N byte-context model.

The model predicts each byte from a hash of its ``order`` predecessor
bytes.  Frequencies live in a dense ``(2**table_bits, 256)`` count
matrix with Laplace +1 smoothing (every symbol always codable) and
periodic halving once a context's mass exceeds ``max_total`` (keeps
totals within the range coder's
:data:`~repro.algorithms.ac.rangecoder.MAX_TOTAL` precision budget and
lets the model track drifting statistics).

Adaptation happens at **chunk boundaries**: within a chunk the tables
are frozen, and after a chunk is encoded (or decoded) its bytes are
folded into the counts.  Freezing buys two things:

* the whole modeling stage is vectorized numpy — context hashing,
  cumulative-row construction, and triple gathering are matrix ops over
  the chunk (:meth:`ContextModel.chunk_triples`), and
* modeling and entropy coding become genuinely independent stages —
  the model can race ahead of the coder by whole chunks, which is what
  the EDPC-style decoupled pipeline (DESIGN.md §5i) exploits.

Encoder and decoder run the *identical* update schedule, so their
tables stay bit-for-bit synchronized without any side channel.
Everything is integer arithmetic — deterministic across platforms.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.errors import CorruptStreamError
from repro.util.kernels import scalar_kernels

MASK64 = (1 << 64) - 1

#: Odd 64-bit multipliers, one per context lag (supports order <= 4).
_LAG_MULTIPLIERS = (
    0x9E3779B97F4A7C15,
    0xC2B2AE3D27D4EB4F,
    0x165667B19E3779F9,
    0x27D4EB2F165667C5,
)

#: Final avalanche multiplier before folding to ``table_bits``.
_FOLD_MULTIPLIER = 0xFF51AFD7ED558CCD

MAX_ORDER = len(_LAG_MULTIPLIERS)


@dataclass(frozen=True)
class ACConfig:
    """Tuning knobs for the adaptive-context coder.

    The defaults (order-2, 4 KiB chunks, 2^14 hashed contexts) are the
    calibrated operating point used by the golden vectors and the
    ``edpc`` bench — change them and every ``.ac.bin`` artifact changes.
    """

    order: int = 2
    chunk_bytes: int = 4096
    table_bits: int = 14
    max_total: int = 1 << 15

    def __post_init__(self) -> None:
        if not 0 <= self.order <= MAX_ORDER:
            raise ValueError(f"order must be in [0, {MAX_ORDER}]")
        if self.chunk_bytes < 256 or self.chunk_bytes & (self.chunk_bytes - 1):
            raise ValueError("chunk_bytes must be a power of two >= 256")
        if not 8 <= self.table_bits <= 20:
            raise ValueError("table_bits must be in [8, 20]")
        if not 1 << 10 <= self.max_total <= 1 << 16:
            raise ValueError("max_total must be in [2^10, 2^16]")

    @property
    def chunk_log2(self) -> int:
        return self.chunk_bytes.bit_length() - 1


class ContextModel:
    """Hashed order-N frequency model shared by encoder and decoder."""

    def __init__(self, config: ACConfig, track_rows: bool = False) -> None:
        self.config = config
        self.n_contexts = 1 << config.table_bits
        # Dense count matrix: row = context, column = next byte.  int32
        # is ample (totals are halved long before overflow).
        self._counts = np.zeros((self.n_contexts, 256), dtype=np.int32)
        self._totals = np.zeros(self.n_contexts, dtype=np.int64)
        self._uniform_row = list(range(257))
        # Decode-side fast path: with track_rows a dense cumulative
        # matrix is maintained — the rows of every *touched* context are
        # rebuilt in one vectorized pass at each chunk boundary, so the
        # sequential symbol loop only does row indexing + searchsorted.
        self.track_rows = track_rows
        if track_rows:
            self.cum_mat = np.empty((self.n_contexts, 257), dtype=np.int64)
            self.cum_mat[:] = np.arange(257, dtype=np.int64)
        else:
            self.cum_mat = None
        # Lazy per-context row cache for the non-tracking path.
        self._cum: dict[int, list[int]] = {}
        self._shift = np.uint64(64 - config.table_bits)
        self._fold = np.uint64(_FOLD_MULTIPLIER)

    # -- context hashing ---------------------------------------------------

    def context_hashes(self, data: np.ndarray, start: int, stop: int) -> np.ndarray:
        """Vectorized context hash for positions ``start:stop`` of ``data``.

        ``data`` is the full uint8 message; contexts deliberately cross
        chunk boundaries.  Positions before ``order`` see zero padding.
        Returns int64 context indices in ``[0, n_contexts)``.
        """
        n = stop - start
        order = self.config.order
        if order == 0:
            return np.zeros(n, dtype=np.int64)
        if scalar_kernels():
            return self._context_hashes_scalar(data, start, stop)
        h = np.zeros(n, dtype=np.uint64)
        if start >= order:
            # Fast path (every chunk but the first): each lag's
            # predecessor bytes are a contiguous zero-copy slice — no
            # index arrays, no masking.
            for lag in range(1, order + 1):
                h += (data[start - lag : stop - lag].astype(np.uint64)
                      * np.uint64(_LAG_MULTIPLIERS[lag - 1]))
            return ((h * self._fold) >> self._shift).astype(np.int64)
        idx = np.arange(start, stop, dtype=np.int64)
        for lag in range(1, order + 1):
            prev = np.where(
                idx >= lag, data[np.maximum(idx - lag, 0)], 0
            ).astype(np.uint64)
            h += prev * np.uint64(_LAG_MULTIPLIERS[lag - 1])
        return ((h * self._fold) >> self._shift).astype(np.int64)

    def _context_hashes_scalar(
        self, data: np.ndarray, start: int, stop: int
    ) -> np.ndarray:
        """Per-position reference for :meth:`context_hashes`, built on
        the decoder's :meth:`context_hash_scalar` twin."""
        out = np.empty(stop - start, dtype=np.int64)
        for k, pos in enumerate(range(start, stop)):
            history = [int(b) for b in data[max(pos - self.config.order, 0) : pos]]
            out[k] = self.context_hash_scalar(history)
        return out

    def context_hash_scalar(self, history: list[int]) -> int:
        """Scalar twin of :meth:`context_hashes` for the decoder.

        ``history`` is the most recent decoded bytes, newest last; bytes
        before the start of the message are zeros.
        """
        order = self.config.order
        if order == 0:
            return 0
        h = 0
        m = len(history)
        for lag in range(1, order + 1):
            prev = history[m - lag] if m >= lag else 0
            h = (h + prev * _LAG_MULTIPLIERS[lag - 1]) & MASK64
        return ((h * _FOLD_MULTIPLIER) & MASK64) >> (64 - self.config.table_bits)

    # -- vectorized encode path --------------------------------------------

    def chunk_triples(
        self, data: np.ndarray, start: int, stop: int
    ) -> "tuple[list[int], list[int], list[int]]":
        """Frequency triples for every position in a frozen chunk.

        One cumulative matrix is built per *distinct* context in the
        chunk, then triples are gathered with fancy indexing — no
        per-symbol python work.
        """
        hashes = self.context_hashes(data, start, stop)
        syms = data[start:stop].astype(np.int64)
        uniq, inv = np.unique(hashes, return_inverse=True)
        block = self._counts[uniq].astype(np.int64) + 1
        mat = np.zeros((len(uniq), 257), dtype=np.int64)
        np.cumsum(block, axis=1, out=mat[:, 1:])
        lo = mat[inv, syms]
        fr = mat[inv, syms + 1] - lo
        tot = mat[inv, 256]
        return lo.tolist(), fr.tolist(), tot.tolist()

    # -- sequential decode path --------------------------------------------

    def cum_row(self, ctx: int) -> list[int]:
        """257-entry cumulative row of ``counts + 1`` for ``ctx``."""
        if self.track_rows:
            return self.cum_mat[ctx].tolist()
        row = self._cum.get(ctx)
        if row is not None:
            return row
        if self._totals[ctx] == 0:
            return self._uniform_row
        cum = np.empty(257, dtype=np.int64)
        cum[0] = 0
        np.cumsum(self._counts[ctx] + 1, out=cum[1:])
        row = cum.tolist()
        self._cum[ctx] = row
        return row

    def triple(self, ctx: int, symbol: int) -> "tuple[int, int, int]":
        row = self.cum_row(ctx)
        lo = row[symbol]
        return lo, row[symbol + 1] - lo, row[256]

    def symbol_from_target(self, ctx: int, target: int) -> int:
        """Inverse lookup: cumulative target -> symbol (decoder side)."""
        row = self.cum_row(ctx)
        if not 0 <= target < row[256]:
            raise CorruptStreamError(
                f"cumulative target {target} outside model range {row[256]}"
            )
        # rows are strictly increasing (+1 smoothing), so bisect is exact
        return bisect.bisect_right(row, target) - 1

    # -- adaptation --------------------------------------------------------

    def update_chunk(self, data: np.ndarray, start: int, stop: int) -> None:
        """Fold ``data[start:stop]`` into the tables (chunk boundary).

        Must be called with exactly the same (data, start, stop)
        sequence on the encode and decode sides.
        """
        hashes = self.context_hashes(data, start, stop)
        syms = data[start:stop].astype(np.int64)
        # Sort-based pair counting: unique (context, symbol) pairs give
        # duplicate-free fancy indices, so += is safe and one C call.
        pairs, pair_counts = np.unique(hashes * 256 + syms, return_counts=True)
        self._counts[pairs >> 8, pairs & 255] += pair_counts.astype(np.int32)
        self._totals += np.bincount(
            hashes, minlength=self.n_contexts
        )
        over = np.flatnonzero(self._totals + 256 > self.config.max_total)
        if len(over):
            self._counts[over] >>= 1
            self._totals[over] = self._counts[over].sum(axis=1)
        touched = np.unique(hashes)
        if self.track_rows:
            # Halved contexts are a subset of the touched set, so one
            # rebuild pass covers both plain updates and halvings.
            block = self._counts[touched].astype(np.int64) + 1
            self.cum_mat[touched, 1:] = np.cumsum(block, axis=1)
        elif self._cum:
            for ctx in touched.tolist():
                self._cum.pop(ctx, None)

    # -- introspection (tests) ---------------------------------------------

    @property
    def touched_contexts(self) -> int:
        return int(np.count_nonzero(self._totals))
