"""Deliberately-simple bitwise arithmetic coder (differential oracle).

A textbook Witten–Neal–Cleary coder: 32-bit ``low``/``high`` interval,
bit-at-a-time renormalization with explicit pending-bit (underflow)
tracking, MSB-first bit IO.  It is written for obviousness, not speed —
its only job is to consume the *same* model trace as the production
range coder (:mod:`repro.algorithms.ac.rangecoder`) and prove, case by
case, that the fast coder loses nothing: identical decoded output and
corpus compression ratio within 0.1%.

Kept deliberately independent: no shared coder code, different
renormalization style (bitwise vs byte-wise), different carry handling
(pending bits vs cache+0xFF run).  A bug in one is vanishingly unlikely
to be mirrored in the other.
"""

from __future__ import annotations

from typing import Iterable

from repro.algorithms.ac.codec import CodingBatch, model_batches
from repro.algorithms.ac.model import ACConfig, ContextModel
from repro.errors import CorruptStreamError

import numpy as np

_CODE_BITS = 32
_MASK = (1 << _CODE_BITS) - 1
_HALF = 1 << (_CODE_BITS - 1)
_QUARTER = 1 << (_CODE_BITS - 2)
_THREE_QUARTERS = 3 * _QUARTER


class _BitWriter:
    def __init__(self) -> None:
        self._bits: list[int] = []

    def put(self, bit: int) -> None:
        self._bits.append(bit)

    def put_with_pending(self, bit: int, pending: int) -> None:
        self.put(bit)
        inverse = bit ^ 1
        for _ in range(pending):
            self.put(inverse)

    def to_bytes(self) -> bytes:
        bits = self._bits
        out = bytearray((len(bits) + 7) // 8)
        for i, bit in enumerate(bits):
            if bit:
                out[i >> 3] |= 0x80 >> (i & 7)
        return bytes(out)


class _BitReader:
    """MSB-first reader; reads past the end yield 0 (WNC convention)."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def get(self) -> int:
        i = self._pos
        self._pos += 1
        if i >= 8 * len(self._data):
            return 0
        return (self._data[i >> 3] >> (7 - (i & 7))) & 1


class ReferenceEncoder:
    """Bit-at-a-time arithmetic encoder over frequency triples."""

    def __init__(self) -> None:
        self.low = 0
        self.high = _MASK
        self.pending = 0
        self._writer = _BitWriter()

    def encode(self, cum_lo: int, freq: int, total: int) -> None:
        span = self.high - self.low + 1
        self.high = self.low + (span * (cum_lo + freq)) // total - 1
        self.low = self.low + (span * cum_lo) // total
        while True:
            if self.high < _HALF:
                self._writer.put_with_pending(0, self.pending)
                self.pending = 0
            elif self.low >= _HALF:
                self._writer.put_with_pending(1, self.pending)
                self.pending = 0
                self.low -= _HALF
                self.high -= _HALF
            elif self.low >= _QUARTER and self.high < _THREE_QUARTERS:
                self.pending += 1
                self.low -= _QUARTER
                self.high -= _QUARTER
            else:
                break
            self.low = self.low << 1
            self.high = (self.high << 1) | 1

    def flush(self) -> bytes:
        self.pending += 1
        if self.low < _QUARTER:
            self._writer.put_with_pending(0, self.pending)
        else:
            self._writer.put_with_pending(1, self.pending)
        return self._writer.to_bytes()


class ReferenceDecoder:
    def __init__(self, data: bytes) -> None:
        self._reader = _BitReader(data)
        self.low = 0
        self.high = _MASK
        self.value = 0
        for _ in range(_CODE_BITS):
            self.value = (self.value << 1) | self._reader.get()

    def decode_target(self, total: int) -> int:
        span = self.high - self.low + 1
        target = ((self.value - self.low + 1) * total - 1) // span
        if not 0 <= target < total:
            raise CorruptStreamError(
                f"reference decoder target {target} outside [0, {total})"
            )
        return target

    def consume(self, cum_lo: int, freq: int, total: int) -> None:
        span = self.high - self.low + 1
        self.high = self.low + (span * (cum_lo + freq)) // total - 1
        self.low = self.low + (span * cum_lo) // total
        while True:
            if self.high < _HALF:
                pass
            elif self.low >= _HALF:
                self.low -= _HALF
                self.high -= _HALF
                self.value -= _HALF
            elif self.low >= _QUARTER and self.high < _THREE_QUARTERS:
                self.low -= _QUARTER
                self.high -= _QUARTER
                self.value -= _QUARTER
            else:
                break
            self.low = self.low << 1
            self.high = (self.high << 1) | 1
            self.value = (self.value << 1) | self._reader.get()


def reference_encode_batches(batches: Iterable[CodingBatch]) -> bytes:
    enc = ReferenceEncoder()
    for batch in batches:
        for lo, fr, tot in zip(batch.cum_lo, batch.freq, batch.total):
            enc.encode(lo, fr, tot)
    return enc.flush()


def reference_compress_payload(data: bytes, config: "ACConfig | None" = None) -> bytes:
    """Coded payload (no container header) for ``data``."""
    if config is None:
        config = ACConfig()
    if not data:
        return b""
    return reference_encode_batches(model_batches(data, config))


def reference_decompress_payload(
    payload: bytes, length: int, config: "ACConfig | None" = None
) -> bytes:
    """Decode ``length`` symbols from a reference-coded payload."""
    if config is None:
        config = ACConfig()
    if length == 0:
        return b""
    model = ContextModel(config)
    dec = ReferenceDecoder(payload)
    out = np.empty(length, dtype=np.uint8)
    history: list[int] = []
    order = config.order
    start = 0
    while start < length:
        stop = min(start + config.chunk_bytes, length)
        for pos in range(start, stop):
            ctx = model.context_hash_scalar(history)
            total = model.cum_row(ctx)[256]
            target = dec.decode_target(total)
            sym = model.symbol_from_target(ctx, target)
            lo, fr, tot = model.triple(ctx, sym)
            dec.consume(lo, fr, tot)
            out[pos] = sym
            history.append(sym)
            if len(history) > order:
                history.pop(0)
        model.update_chunk(out, start, stop)
        start = stop
    return out.tobytes()
