"""Carry-aware byte-wise range coder (Subbotin/LZMA lineage).

The encoder keeps a 64-bit ``low`` accumulator and a 32-bit ``range``.
Narrowing an interval can carry out of the low 32 bits; the carry is
absorbed by a one-byte ``cache`` plus a run of pending ``0xFF`` bytes
(``cache_size``) that are only emitted once the carry is resolved.
Renormalization is byte-wise: whenever ``range`` drops below
``TOP = 2**24`` both registers shift left by 8 bits and one output byte
is produced.

Invariants (checked by tests/algorithms/ac/test_rangecoder.py):

* ``0 <= low < 2**33`` on entry to ``_shift_low`` (at most one carry).
* ``TOP <= range <= 2**32 - 1`` between ``encode`` calls.
* The decoder maintains ``code < range`` on well-formed streams; a
  violated invariant on corrupt input surfaces as a typed
  :class:`~repro.errors.CorruptStreamError` (never a hang), and the
  container CRC catches any silent mis-decode.

Symbols are coded from cumulative-frequency triples
``(cum_lo, freq, total)`` with ``total <= MAX_TOTAL`` so the per-symbol
division ``range // total`` never truncates to zero on valid streams.
The model producing the triples lives in :mod:`repro.algorithms.ac.model`;
this module is model-agnostic.
"""

from __future__ import annotations

from repro.errors import CorruptStreamError

TOP = 1 << 24
MASK32 = (1 << 32) - 1
MASK64 = (1 << 64) - 1

#: Upper bound on the ``total`` of any frequency table fed to the coder.
#: Guarantees ``range // total >= TOP // MAX_TOTAL = 128`` after
#: renormalization, so the interval never collapses on valid input.
MAX_TOTAL = 1 << 17

#: Bytes appended by :meth:`RangeEncoder.flush` / consumed by decoder init.
FLUSH_BYTES = 5


class RangeEncoder:
    """Streaming range encoder producing a ``bytes`` payload."""

    def __init__(self) -> None:
        self.low = 0
        self.range = MASK32
        self.cache = 0
        self.cache_size = 1  # accounts for the leading pad byte
        self._out = bytearray()

    def encode(self, cum_lo: int, freq: int, total: int) -> None:
        """Narrow the interval to ``[cum_lo, cum_lo + freq) / total``."""
        if not (0 < freq and 0 <= cum_lo and cum_lo + freq <= total):
            raise ValueError(
                f"bad frequency triple ({cum_lo}, {freq}, {total})"
            )
        if total > MAX_TOTAL:
            raise ValueError(f"total {total} exceeds MAX_TOTAL {MAX_TOTAL}")
        r = self.range // total
        self.low = (self.low + r * cum_lo) & MASK64
        if cum_lo + freq == total:
            # Give the top symbol the slack left by integer division so
            # the full interval stays covered (classic range-coder trick;
            # keeps the coder tight without a second division).
            self.range -= r * cum_lo
        else:
            self.range = r * freq
        while self.range < TOP:
            self.range = (self.range << 8) & MASK32
            self._shift_low()

    def _shift_low(self) -> None:
        if self.low < 0xFF00_0000 or self.low > MASK32:
            carry = self.low >> 32
            self._out.append((self.cache + carry) & 0xFF)
            ff = (0xFF + carry) & 0xFF
            for _ in range(self.cache_size - 1):
                self._out.append(ff)
            self.cache_size = 0
            self.cache = (self.low >> 24) & 0xFF
        self.cache_size += 1
        self.low = (self.low << 8) & MASK32 & MASK64

    def flush(self) -> bytes:
        """Drain the carry chain; returns the complete coded payload."""
        for _ in range(FLUSH_BYTES):
            self._shift_low()
        return bytes(self._out)


class RangeDecoder:
    """Mirror-image decoder over an in-memory coded payload.

    Exhausting the payload mid-stream raises
    :class:`~repro.errors.CorruptStreamError`; the decoder never reads
    past the buffer and never loops without consuming interval width.
    """

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0
        self.range = MASK32
        self.code = 0
        self._r = 0
        # The encoder's cache_size starts at 1, so byte 0 is a pad byte.
        self._next_byte()
        for _ in range(FLUSH_BYTES - 1):
            self.code = (self.code << 8) | self._next_byte()

    def _next_byte(self) -> int:
        if self._pos >= len(self._data):
            raise CorruptStreamError(
                f"range-coded payload truncated at byte {self._pos}"
            )
        b = self._data[self._pos]
        self._pos += 1
        return b

    @property
    def bytes_consumed(self) -> int:
        return self._pos

    def decode_target(self, total: int) -> int:
        """Return the cumulative-frequency target for the next symbol.

        The caller maps the target back to a symbol via its model and
        then MUST call :meth:`consume` with that symbol's triple.
        """
        self._r = self.range // total
        if self._r == 0:
            raise CorruptStreamError(
                "range collapsed during decode (corrupt stream)"
            )
        target = self.code // self._r
        if target >= total:
            # Only reachable on corrupt input or via the top-symbol
            # slack; clamp so the caller resolves the last symbol.
            target = total - 1
        return target

    def consume(self, cum_lo: int, freq: int, total: int) -> None:
        """Advance past the symbol identified by ``decode_target``."""
        self.code -= self._r * cum_lo
        if cum_lo + freq == total:
            self.range -= self._r * cum_lo
        else:
            self.range = self._r * freq
        if self.code >= self.range:
            raise CorruptStreamError(
                "decoder state invariant violated (corrupt stream)"
            )
        while self.range < TOP:
            self.range = (self.range << 8) & MASK32
            self.code = (self.code << 8) | self._next_byte()
