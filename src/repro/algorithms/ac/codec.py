"""``ac`` container format and the decoupled model/coder stages.

Stream layout (little-endian)::

    offset  size  field
    0       4     magic  b"RAC1"
    4       1     model order (0..4)
    5       1     log2(chunk_bytes)
    6       1     table_bits
    7       1     reserved (0)
    8       4     u32 original length
    12      4     u32 CRC-32 of the original bytes
    16      ...   range-coded payload (absent when length == 0)

The stream is self-describing: the decoder reconstructs the model
configuration from the header, so ``ac_decompress`` needs no config.
The CRC turns any model/coder desync or surviving bit corruption into a
typed :class:`~repro.errors.ChecksumMismatchError` instead of silent
wrong output.

Compression is split into two *pure* stages mirroring EDPC's
model/coder decoupling:

* :func:`model_batches` — per chunk, hash contexts and gather the
  cumulative-frequency triples (vectorized numpy), then fold the chunk
  into the model.  Produces :class:`CodingBatch` items.
* :func:`encode_batches` — feed batches to the carry-aware range
  encoder.  Knows nothing about the model.

``ac_compress`` drives them back-to-back; ``ac_compress_pipelined``
drives them through a bounded queue (model may run at most
``queue_depth`` chunks ahead) and is asserted byte-identical to the
serial path.  The simulated-hardware twin of this dataflow lives in
:mod:`repro.sched.decoupled`.

Decompression is inherently single-stage: the model needs chunk *k*'s
decoded bytes before it can rank chunk *k+1*'s symbols.
"""

from __future__ import annotations

import struct
import zlib
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.algorithms.ac.model import ACConfig, ContextModel
from repro.algorithms.ac.rangecoder import RangeDecoder, RangeEncoder
from repro.errors import (
    CorruptStreamError,
    ChecksumMismatchError,
    OutputOverflowError,
    UnsupportedDataError,
)

MAGIC = b"RAC1"
HEADER_BYTES = 16
_HEADER = struct.Struct("<4sBBBBII")

#: Default operating point (see ACConfig docstring).
DEFAULT_CONFIG = ACConfig()


@dataclass(frozen=True)
class CodingBatch:
    """One chunk's worth of model output, ready for the entropy coder.

    ``cum_lo``/``freq``/``total`` are parallel lists of cumulative
    frequency triples, one per symbol.  The batch is immutable and
    self-contained — exactly the unit that crosses the bounded queue
    between the model and coder stages.
    """

    chunk_index: int
    n_symbols: int
    cum_lo: list[int]
    freq: list[int]
    total: list[int]


def model_batches(
    data: bytes, config: ACConfig, model: "ContextModel | None" = None
) -> Iterator[CodingBatch]:
    """Stage 1: chunk the message and emit frequency-triple batches.

    The model adapts *after* each chunk, so batch *k*'s triples depend
    only on chunks ``< k`` — the coder never has to wait for feedback.
    """
    if model is None:
        model = ContextModel(config)
    arr = np.frombuffer(data, dtype=np.uint8)
    n = len(arr)
    chunk = config.chunk_bytes
    for chunk_index, start in enumerate(range(0, n, chunk)):
        stop = min(start + chunk, n)
        cum_lo, freq, total = model.chunk_triples(arr, start, stop)
        model.update_chunk(arr, start, stop)
        yield CodingBatch(
            chunk_index=chunk_index,
            n_symbols=stop - start,
            cum_lo=cum_lo,
            freq=freq,
            total=total,
        )


def encode_batches(batches: Iterable[CodingBatch]) -> bytes:
    """Stage 2: run the range encoder over the batch stream."""
    enc = RangeEncoder()
    encode = enc.encode
    for batch in batches:
        for lo, fr, tot in zip(batch.cum_lo, batch.freq, batch.total):
            encode(lo, fr, tot)
    return enc.flush()


def _pipelined_batches(
    batches: Iterator[CodingBatch], queue_depth: int
) -> Iterator[CodingBatch]:
    """Bounded-queue driver between the two stages.

    With synchronous generators this is a read-ahead buffer: the model
    stage runs at most ``queue_depth`` chunks ahead of the coder.  The
    dataflow (and therefore the bytes) is identical to the serial path;
    the *time* overlap it enables is modelled in repro.sched.decoupled.
    """
    if queue_depth < 1:
        raise ValueError("queue_depth must be >= 1")
    queue: deque[CodingBatch] = deque()
    exhausted = False
    while True:
        while not exhausted and len(queue) < queue_depth:
            try:
                queue.append(next(batches))
            except StopIteration:
                exhausted = True
        if not queue:
            return
        yield queue.popleft()


def _header(config: ACConfig, length: int, crc: int) -> bytes:
    return _HEADER.pack(
        MAGIC, config.order, config.chunk_log2, config.table_bits, 0,
        length, crc,
    )


def ac_compress(
    data: bytes, config: "ACConfig | None" = None
) -> bytes:
    """Compress ``data`` with the adaptive-context range coder."""
    if config is None:
        config = DEFAULT_CONFIG
    if len(data) > 0xFFFF_FFFF:
        raise UnsupportedDataError("ac streams are limited to < 4 GiB")
    crc = zlib.crc32(data) & 0xFFFF_FFFF
    head = _header(config, len(data), crc)
    if not data:
        return head
    payload = encode_batches(model_batches(data, config))
    return head + payload


def ac_compress_pipelined(
    data: bytes, config: "ACConfig | None" = None, queue_depth: int = 2
) -> bytes:
    """Two-stage compress through a bounded model→coder queue.

    Byte-identical to :func:`ac_compress` by construction; exists so
    tests and the ``edpc`` bench can assert that the decoupled dataflow
    changes *when* work happens, never *what* is produced.
    """
    if config is None:
        config = DEFAULT_CONFIG
    if len(data) > 0xFFFF_FFFF:
        raise UnsupportedDataError("ac streams are limited to < 4 GiB")
    crc = zlib.crc32(data) & 0xFFFF_FFFF
    head = _header(config, len(data), crc)
    if not data:
        return head
    staged = _pipelined_batches(model_batches(data, config), queue_depth)
    return head + encode_batches(staged)


def parse_header(blob: bytes) -> tuple[ACConfig, int, int]:
    """Validate the container header; returns (config, length, crc)."""
    if len(blob) < HEADER_BYTES:
        raise CorruptStreamError(
            f"ac stream too short for header ({len(blob)} < {HEADER_BYTES})"
        )
    magic, order, chunk_log2, table_bits, reserved, length, crc = \
        _HEADER.unpack_from(blob)
    if magic != MAGIC:
        raise CorruptStreamError(f"bad ac magic {magic!r}")
    if reserved != 0:
        raise CorruptStreamError(f"nonzero reserved header byte {reserved}")
    try:
        config = ACConfig(
            order=order,
            chunk_bytes=1 << chunk_log2,
            table_bits=table_bits,
        )
    except ValueError as exc:
        raise CorruptStreamError(f"invalid ac header parameters: {exc}") from exc
    return config, length, crc


def ac_decompress(blob: bytes, max_output: "int | None" = None) -> bytes:
    """Decompress an ``ac`` stream produced by :func:`ac_compress`.

    Raises typed errors on any malformed input: CorruptStreamError for
    truncation/format violations, ChecksumMismatchError when the CRC
    disagrees, OutputOverflowError when the declared length exceeds
    ``max_output``.  The symbol loop is bounded by the declared length
    and every renormalization consumes interval width, so corrupt
    streams can never hang the decoder.
    """
    config, length, crc = parse_header(blob)
    if max_output is not None and length > max_output:
        raise OutputOverflowError(
            f"declared length {length} exceeds max_output {max_output}"
        )
    if length == 0:
        if crc != 0:
            raise ChecksumMismatchError("crc32", crc, 0)
        return b""
    payload = blob[HEADER_BYTES:]
    # The dense cumulative matrix costs O(2**table_bits * 257) memory —
    # only worth it (and only safe against hostile headers declaring a
    # huge table for a tiny stream) when the output is of comparable
    # scale; the lazy row cache decodes identically, just slower.
    track_rows = length * 256 >= 1 << config.table_bits
    model = ContextModel(config, track_rows=track_rows)
    dec = RangeDecoder(payload)
    out = np.empty(length, dtype=np.uint8)
    outl: list[int] = [0] * length
    history: list[int] = []
    chunk = config.chunk_bytes
    order = config.order
    hash_scalar = model.context_hash_scalar
    cum_mat = model.cum_mat
    decode_target = dec.decode_target
    consume = dec.consume
    searchsorted = np.searchsorted
    start = 0
    while start < length:
        stop = min(start + chunk, length)
        if track_rows:
            for pos in range(start, stop):
                ctx = hash_scalar(history)
                row = cum_mat[ctx]
                total = row[256].item()
                target = decode_target(total)
                sym = searchsorted(row, target, side="right").item() - 1
                lo = row[sym].item()
                consume(lo, row[sym + 1].item() - lo, total)
                outl[pos] = sym
                history.append(sym)
                if len(history) > order:
                    history.pop(0)
        else:
            # Lazy-row path (tiny output or oversized declared table):
            # same arithmetic over python-list rows, no dense matrix.
            for pos in range(start, stop):
                ctx = hash_scalar(history)
                row = model.cum_row(ctx)
                total = row[256]
                target = decode_target(total)
                sym = model.symbol_from_target(ctx, target)
                lo = row[sym]
                consume(lo, row[sym + 1] - lo, total)
                outl[pos] = sym
                history.append(sym)
                if len(history) > order:
                    history.pop(0)
        out[start:stop] = outl[start:stop]
        model.update_chunk(out, start, stop)
        start = stop
    raw = out.tobytes()
    actual = zlib.crc32(raw) & 0xFFFF_FFFF
    if actual != crc:
        raise ChecksumMismatchError("crc32", crc, actual)
    return raw
