"""DEFLATE decompressor (inflate, RFC 1951).

Handles arbitrary multi-block streams with stored, fixed-Huffman, and
dynamic-Huffman blocks, including overlapping back-references.  Designed
to inflate streams from *any* conforming compressor (tested against the
Python stdlib's zlib as an independent producer).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import huffman
from repro.algorithms.deflate import tables as T
from repro.errors import CorruptStreamError, OutputOverflowError
from repro.obs.profile import get_profiler
from repro.util.bitio import BitReader

__all__ = ["deflate_decompress"]

_FIXED_LITLEN_DECODER: huffman.HuffmanDecoder | None = None
_FIXED_DIST_DECODER: huffman.HuffmanDecoder | None = None


def _fixed_decoders() -> tuple[huffman.HuffmanDecoder, huffman.HuffmanDecoder]:
    global _FIXED_LITLEN_DECODER, _FIXED_DIST_DECODER
    if _FIXED_LITLEN_DECODER is None:
        _FIXED_LITLEN_DECODER = huffman.HuffmanDecoder(T.FIXED_LITLEN_LENGTHS)
        _FIXED_DIST_DECODER = huffman.HuffmanDecoder(T.FIXED_DIST_LENGTHS)
    assert _FIXED_DIST_DECODER is not None
    return _FIXED_LITLEN_DECODER, _FIXED_DIST_DECODER


def _read_dynamic_trees(
    reader: BitReader,
) -> tuple[huffman.HuffmanDecoder, huffman.HuffmanDecoder]:
    """Parse the dynamic block header (RFC 1951 §3.2.7)."""
    hlit = reader.read_bits(5) + 257
    hdist = reader.read_bits(5) + 1
    hclen = reader.read_bits(4) + 4

    cl_lengths = np.zeros(19, dtype=np.int32)
    for k in range(hclen):
        cl_lengths[int(T.CLCODE_ORDER[k])] = reader.read_bits(3)
    cl_decoder = huffman.HuffmanDecoder(cl_lengths)

    total = hlit + hdist
    lengths = np.zeros(total, dtype=np.int32)
    i = 0
    while i < total:
        sym = cl_decoder.decode(reader)
        if sym < 16:
            lengths[i] = sym
            i += 1
        elif sym == 16:
            if i == 0:
                raise CorruptStreamError("repeat code with no previous length")
            run = 3 + reader.read_bits(2)
            if i + run > total:
                raise CorruptStreamError("code-length repeat overruns alphabet")
            lengths[i : i + run] = lengths[i - 1]
            i += run
        elif sym == 17:
            run = 3 + reader.read_bits(3)
            if i + run > total:
                raise CorruptStreamError("code-length zero-run overruns alphabet")
            i += run
        else:  # sym == 18
            run = 11 + reader.read_bits(7)
            if i + run > total:
                raise CorruptStreamError("code-length zero-run overruns alphabet")
            i += run

    litlen_lengths = lengths[:hlit]
    dist_lengths = lengths[hlit:]
    if litlen_lengths[T.END_OF_BLOCK] == 0:
        raise CorruptStreamError("dynamic block has no end-of-block code")
    litlen_decoder = huffman.HuffmanDecoder(litlen_lengths)
    if dist_lengths.max(initial=0) == 0:
        dist_decoder = None
    else:
        dist_decoder = huffman.HuffmanDecoder(dist_lengths)
    return litlen_decoder, dist_decoder  # type: ignore[return-value]


def _inflate_block(
    reader: BitReader,
    out: bytearray,
    litlen_decoder: huffman.HuffmanDecoder,
    dist_decoder: huffman.HuffmanDecoder | None,
    max_output: int | None,
) -> None:
    """Decode one Huffman-coded block into ``out``."""
    with get_profiler().kernel("huffman.decode"):
        _inflate_block_loop(reader, out, litlen_decoder, dist_decoder,
                            max_output)


def _inflate_block_loop(
    reader: BitReader,
    out: bytearray,
    litlen_decoder: huffman.HuffmanDecoder,
    dist_decoder: huffman.HuffmanDecoder | None,
    max_output: int | None,
) -> None:
    # Local aliases: this is the hottest loop in the decompressor.
    lit_table = litlen_decoder.table
    lit_bits = litlen_decoder.max_bits
    peek = reader.peek_bits
    skip = reader.skip_bits
    read = reader.read_bits
    length_base = T.LENGTH_BASE
    length_extra = T.LENGTH_EXTRA
    dist_base = T.DIST_BASE
    dist_extra = T.DIST_EXTRA

    while True:
        entry = int(lit_table[peek(lit_bits)])
        if entry == 0:
            raise CorruptStreamError("invalid literal/length code")
        skip(entry >> 9)
        sym = entry & 0x1FF
        if sym < 256:
            out.append(sym)
        elif sym == T.END_OF_BLOCK:
            return
        else:
            if sym > 285:
                raise CorruptStreamError(f"invalid length symbol {sym}")
            idx = sym - 257
            length = int(length_base[idx]) + read(int(length_extra[idx]))
            if dist_decoder is None:
                raise CorruptStreamError("match in block with empty distance tree")
            dsym = dist_decoder.decode(reader)
            if dsym > 29:
                raise CorruptStreamError(f"invalid distance symbol {dsym}")
            dist = int(dist_base[dsym]) + read(int(dist_extra[dsym]))
            start = len(out) - dist
            if start < 0:
                raise CorruptStreamError("back-reference before start of output")
            if dist >= length:
                out += out[start : start + length]
            else:
                for k in range(length):  # overlapping copy
                    out.append(out[start + k])
        if max_output is not None and len(out) > max_output:
            raise OutputOverflowError(
                f"decompressed output exceeds limit of {max_output} bytes"
            )


def deflate_decompress(
    data: bytes, max_output: int | None = None
) -> bytes:
    """Inflate a raw DEFLATE stream.

    Parameters
    ----------
    data:
        The compressed stream (no zlib/gzip wrapper).
    max_output:
        Optional safety bound on the decompressed size; exceeding it
        raises :class:`~repro.errors.OutputOverflowError`.
    """
    with get_profiler().kernel("deflate.decompress"):
        return _deflate_decompress(data, max_output)


def _deflate_decompress(data: bytes, max_output: int | None) -> bytes:
    reader = BitReader(data)
    out = bytearray()
    while True:
        bfinal = reader.read_bits(1)
        btype = reader.read_bits(2)
        if btype == 0:
            reader.align_to_byte()
            length = int.from_bytes(reader.read_bytes(2), "little")
            nlen = int.from_bytes(reader.read_bytes(2), "little")
            if length ^ nlen != 0xFFFF:
                raise CorruptStreamError("stored block LEN/NLEN mismatch")
            out += reader.read_bytes(length)
            if max_output is not None and len(out) > max_output:
                raise OutputOverflowError(
                    f"decompressed output exceeds limit of {max_output} bytes"
                )
        elif btype == 1:
            litlen_decoder, dist_decoder = _fixed_decoders()
            _inflate_block(reader, out, litlen_decoder, dist_decoder, max_output)
        elif btype == 2:
            litlen_decoder, dist_decoder = _read_dynamic_trees(reader)
            _inflate_block(reader, out, litlen_decoder, dist_decoder, max_output)
        else:
            raise CorruptStreamError("reserved block type 3")
        if bfinal:
            return bytes(out)
