"""DEFLATE (RFC 1951) — from-scratch compressor and decompressor.

The compressor supports all three block types (stored, fixed-Huffman,
dynamic-Huffman) and picks the cheapest per block; the decompressor
handles arbitrary multi-block streams, which makes it interoperable with
streams produced by zlib/gzip tooling (verified in the test suite
against the Python stdlib).

Public API
----------
:func:`deflate_compress`  — bytes → raw DEFLATE stream.
:func:`deflate_decompress` — raw DEFLATE stream → bytes.
:class:`DeflateConfig` — matcher/block tuning.
"""

from repro.algorithms.deflate.compress import DeflateConfig, deflate_compress
from repro.algorithms.deflate.decompress import deflate_decompress

__all__ = ["DeflateConfig", "deflate_compress", "deflate_decompress"]
