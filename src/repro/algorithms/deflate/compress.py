"""DEFLATE compressor (RFC 1951).

Pipeline: LZ77 tokenisation (:mod:`repro.algorithms.lz77`) → vectorised
symbol mapping → per-block choice among stored / fixed-Huffman /
dynamic-Huffman based on exact emitted sizes → bulk bit packing.

Token streams are encoded as one DEFLATE block per ``block_tokens``
tokens (a single block for typical inputs); each block's Huffman trees
are built from that block's own statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.algorithms import huffman
from repro.algorithms.deflate import tables as T
from repro.algorithms.lz77 import MatcherConfig, TokenStream, tokenize
from repro.obs.profile import get_profiler
from repro.util.bitio import BitWriter

__all__ = ["DeflateConfig", "deflate_compress"]

_MAX_BITS = 15  # litlen/dist code length limit
_MAX_CL_BITS = 7  # code-length alphabet limit


@dataclass(frozen=True)
class DeflateConfig:
    """Compressor tuning.

    ``strategy`` selects block coding: ``"auto"`` picks the cheapest of
    stored/fixed/dynamic per block; ``"fixed"``/``"dynamic"``/``"stored"``
    force one type (still falling back to stored when a Huffman block
    would exceed the stored size is only done under ``"auto"``).
    """

    matcher: MatcherConfig = field(default_factory=MatcherConfig)
    strategy: str = "auto"
    block_tokens: int = 1 << 20

    def __post_init__(self) -> None:
        if self.strategy not in ("auto", "fixed", "dynamic", "stored"):
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.matcher.window_size > T.WINDOW_SIZE:
            raise ValueError("DEFLATE window cannot exceed 32768")
        if self.matcher.max_match > T.MAX_MATCH:
            raise ValueError("DEFLATE match length cannot exceed 258")


# ---------------------------------------------------------------------------
# Symbol mapping
# ---------------------------------------------------------------------------

def _map_symbols(lengths: np.ndarray, values: np.ndarray) -> dict[str, np.ndarray]:
    """Map an LZ77 token block to DEFLATE symbol/extra-bit arrays."""
    is_match = lengths > 0
    litlen_sym = np.where(is_match, 0, values).astype(np.int32)
    len_extra_bits = np.zeros(lengths.size, dtype=np.int64)
    len_extra_val = np.zeros(lengths.size, dtype=np.uint32)
    dist_sym = np.zeros(lengths.size, dtype=np.int32)
    dist_extra_bits = np.zeros(lengths.size, dtype=np.int64)
    dist_extra_val = np.zeros(lengths.size, dtype=np.uint32)

    if is_match.any():
        m_len = lengths[is_match]
        m_dist = values[is_match]
        lsym = T.LENGTH_SYM_FOR_LEN[m_len]
        litlen_sym[is_match] = 257 + lsym
        len_extra_bits[is_match] = T.LENGTH_EXTRA[lsym]
        len_extra_val[is_match] = (m_len - T.LENGTH_BASE[lsym]).astype(np.uint32)
        dsym = T.dist_symbol(m_dist)
        dist_sym[is_match] = dsym
        dist_extra_bits[is_match] = T.DIST_EXTRA[dsym]
        dist_extra_val[is_match] = (m_dist - T.DIST_BASE[dsym]).astype(np.uint32)

    return {
        "is_match": is_match,
        "litlen_sym": litlen_sym,
        "len_extra_bits": len_extra_bits,
        "len_extra_val": len_extra_val,
        "dist_sym": dist_sym,
        "dist_extra_bits": dist_extra_bits,
        "dist_extra_val": dist_extra_val,
    }


def _block_cost_bits(
    syms: dict[str, np.ndarray],
    litlen_lengths: np.ndarray,
    dist_lengths: np.ndarray,
) -> int:
    """Exact payload size in bits of a block under the given trees."""
    cost = int(litlen_lengths[syms["litlen_sym"]].sum())
    cost += int(syms["len_extra_bits"].sum())
    is_match = syms["is_match"]
    if is_match.any():
        cost += int(dist_lengths[syms["dist_sym"][is_match]].sum())
        cost += int(syms["dist_extra_bits"][is_match].sum())
    cost += int(litlen_lengths[T.END_OF_BLOCK])
    return cost


# ---------------------------------------------------------------------------
# Dynamic tree header (code-length-code encoding, RFC 1951 §3.2.7)
# ---------------------------------------------------------------------------

def _rle_code_lengths(all_lengths: np.ndarray) -> tuple[list[int], list[tuple[int, int]]]:
    """RLE-compress the concatenated litlen+dist length sequence.

    Returns ``(cl_symbols, extras)`` where ``extras[i]`` is the
    ``(value, nbits)`` extra field for ``cl_symbols[i]`` (``nbits`` 0 when
    the symbol carries no extra bits).
    """
    seq = [int(x) for x in all_lengths]
    out_syms: list[int] = []
    out_extras: list[tuple[int, int]] = []
    i = 0
    n = len(seq)
    while i < n:
        value = seq[i]
        run = 1
        while i + run < n and seq[i + run] == value:
            run += 1
        i += run
        if value == 0:
            while run >= 11:
                take = min(run, 138)
                out_syms.append(18)
                out_extras.append((take - 11, 7))
                run -= take
            while run >= 3:
                take = min(run, 10)
                out_syms.append(17)
                out_extras.append((take - 3, 3))
                run -= take
            out_syms.extend([0] * run)
            out_extras.extend([(0, 0)] * run)
        else:
            out_syms.append(value)
            out_extras.append((0, 0))
            run -= 1
            while run >= 3:
                take = min(run, 6)
                out_syms.append(16)
                out_extras.append((take - 3, 2))
                run -= take
            out_syms.extend([value] * run)
            out_extras.extend([(0, 0)] * run)
    return out_syms, out_extras


def _dynamic_header(
    litlen_lengths: np.ndarray, dist_lengths: np.ndarray
) -> tuple[list[tuple[int, int]], int]:
    """Build the dynamic block header as ``(value, nbits)`` fields.

    Returns the field list and the total header size in bits.
    """
    # HLIT: number of litlen codes - 257 (at least the EOB code is used).
    hlit = max(int(np.flatnonzero(litlen_lengths > 0).max(initial=256)) + 1, 257)
    used_dist = np.flatnonzero(dist_lengths > 0)
    hdist = max(int(used_dist.max(initial=0)) + 1, 1)

    all_lengths = np.concatenate([litlen_lengths[:hlit], dist_lengths[:hdist]])
    cl_syms, cl_extras = _rle_code_lengths(all_lengths)

    cl_freq = np.bincount(np.asarray(cl_syms, dtype=np.int64), minlength=19)
    cl_lengths = huffman.code_lengths(cl_freq, _MAX_CL_BITS)
    cl_codes = huffman.lsb_codes(cl_lengths)

    ordered = cl_lengths[T.CLCODE_ORDER]
    hclen = 19
    while hclen > 4 and ordered[hclen - 1] == 0:
        hclen -= 1

    fields: list[tuple[int, int]] = [
        (hlit - 257, 5),
        (hdist - 1, 5),
        (hclen - 4, 4),
    ]
    for k in range(hclen):
        fields.append((int(ordered[k]), 3))
    for sym, (extra_val, extra_bits) in zip(cl_syms, cl_extras):
        fields.append((int(cl_codes[sym]), int(cl_lengths[sym])))
        if extra_bits:
            fields.append((extra_val, extra_bits))
    total_bits = sum(nbits for _, nbits in fields)
    return fields, total_bits


# ---------------------------------------------------------------------------
# Block emission
# ---------------------------------------------------------------------------

def _emit_huffman_block(
    writer: BitWriter,
    syms: dict[str, np.ndarray],
    litlen_lengths: np.ndarray,
    dist_lengths: np.ndarray,
) -> None:
    """Emit the token payload + EOB under the given trees (bulk-packed)."""
    with get_profiler().kernel("huffman.emit"):
        _emit_huffman_payload(writer, syms, litlen_lengths, dist_lengths)


def _emit_huffman_payload(
    writer: BitWriter,
    syms: dict[str, np.ndarray],
    litlen_lengths: np.ndarray,
    dist_lengths: np.ndarray,
) -> None:
    litlen_codes = huffman.lsb_codes(litlen_lengths)
    dist_codes = huffman.lsb_codes(dist_lengths)

    n = syms["litlen_sym"].size
    codes = np.zeros((n, 4), dtype=np.uint32)
    bits = np.zeros((n, 4), dtype=np.int64)
    lsym = syms["litlen_sym"]
    codes[:, 0] = litlen_codes[lsym]
    bits[:, 0] = litlen_lengths[lsym]
    is_match = syms["is_match"]
    if is_match.any():
        codes[is_match, 1] = syms["len_extra_val"][is_match]
        bits[is_match, 1] = syms["len_extra_bits"][is_match]
        dsym = syms["dist_sym"][is_match]
        codes[is_match, 2] = dist_codes[dsym]
        bits[is_match, 2] = dist_lengths[dsym]
        codes[is_match, 3] = syms["dist_extra_val"][is_match]
        bits[is_match, 3] = syms["dist_extra_bits"][is_match]
    writer.write_code_array(codes.reshape(-1), bits.reshape(-1))
    writer.write_bits(int(litlen_codes[T.END_OF_BLOCK]), int(litlen_lengths[T.END_OF_BLOCK]))


def _emit_stored_block(writer: BitWriter, raw: bytes, final: bool) -> None:
    """Emit stored (BTYPE=00) blocks; splits chunks over 65535 bytes."""
    pos = 0
    n = len(raw)
    while True:
        chunk = raw[pos : pos + 65535]
        pos += len(chunk)
        last = final and pos >= n
        writer.write_bits(1 if last else 0, 1)
        writer.write_bits(0, 2)
        writer.align_to_byte()
        ln = len(chunk)
        writer.write_bits(ln, 16)
        writer.write_bits(ln ^ 0xFFFF, 16)
        writer.write_bytes(chunk)
        if pos >= n:
            break


def deflate_compress(data: bytes, config: DeflateConfig | None = None) -> bytes:
    """Compress ``data`` into a raw DEFLATE stream."""
    with get_profiler().kernel("deflate.compress"):
        return _deflate_compress(data, config)


def _deflate_compress(data: bytes, config: DeflateConfig | None) -> bytes:
    cfg = config or DeflateConfig()

    if len(data) == 0:
        # A single final fixed block containing only EOB.
        writer = BitWriter()
        writer.write_bits(1, 1)
        writer.write_bits(1, 2)
        writer.write_bits(0, 7)  # EOB in the fixed tree is seven 0-bits
        return writer.getvalue()

    if cfg.strategy == "stored":
        writer = BitWriter()
        _emit_stored_block(writer, data, final=True)
        return writer.getvalue()

    tokens = tokenize(data, cfg.matcher)
    writer = BitWriter()
    tok_lengths, tok_values = tokens.arrays()

    n_tokens = len(tokens)
    block_starts = list(range(0, n_tokens, cfg.block_tokens)) or [0]
    # Byte offset of each token, to slice the raw input for stored blocks.
    byte_pos = np.zeros(n_tokens + 1, dtype=np.int64)
    np.cumsum(np.where(tok_lengths > 0, tok_lengths, 1), out=byte_pos[1:])

    for bi, start in enumerate(block_starts):
        stop = min(start + cfg.block_tokens, n_tokens)
        final = stop >= n_tokens
        syms = _map_symbols(tok_lengths[start:stop], tok_values[start:stop])
        raw = data[int(byte_pos[start]) : int(byte_pos[stop])]

        litlen_freq = np.bincount(syms["litlen_sym"], minlength=286)
        litlen_freq[T.END_OF_BLOCK] += 1
        dist_freq = np.bincount(
            syms["dist_sym"][syms["is_match"]], minlength=30
        )

        dyn_litlen = huffman.code_lengths(litlen_freq, _MAX_BITS)
        dyn_dist = huffman.code_lengths(dist_freq, _MAX_BITS)
        if not dist_freq.any():
            # RFC: at least one distance code must be describable.
            dyn_dist = dyn_dist.copy()
            dyn_dist[0] = 1

        header_fields, dyn_header_bits = _dynamic_header(dyn_litlen, dyn_dist)
        dyn_bits = 3 + dyn_header_bits + _block_cost_bits(syms, dyn_litlen, dyn_dist)
        fixed_bits = 3 + _block_cost_bits(
            syms, T.FIXED_LITLEN_LENGTHS, T.FIXED_DIST_LENGTHS
        )
        stored_bits = (len(raw) + 5 * (1 + len(raw) // 65535)) * 8 + 8

        choice = cfg.strategy
        if choice == "auto":
            best = min(dyn_bits, fixed_bits, stored_bits)
            if best == stored_bits:
                choice = "stored_block"
            elif best == fixed_bits:
                choice = "fixed"
            else:
                choice = "dynamic"

        if choice == "stored_block":
            _emit_stored_block(writer, raw, final)
            continue

        writer.write_bits(1 if final else 0, 1)
        if choice == "fixed":
            writer.write_bits(1, 2)
            _emit_huffman_block(
                writer, syms, T.FIXED_LITLEN_LENGTHS, T.FIXED_DIST_LENGTHS
            )
        else:
            writer.write_bits(2, 2)
            for value, nbits in header_fields:
                writer.write_bits(value, nbits)
            _emit_huffman_block(writer, syms, dyn_litlen, dyn_dist)

    return writer.getvalue()
