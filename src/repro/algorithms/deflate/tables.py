"""RFC 1951 constant tables: length/distance code mappings and fixed trees.

Everything is exposed as numpy arrays so the compressor can map whole
token streams to symbols with vectorised lookups.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MAX_MATCH",
    "MIN_MATCH",
    "WINDOW_SIZE",
    "END_OF_BLOCK",
    "LENGTH_BASE",
    "LENGTH_EXTRA",
    "LENGTH_SYM_FOR_LEN",
    "DIST_BASE",
    "DIST_EXTRA",
    "CLCODE_ORDER",
    "FIXED_LITLEN_LENGTHS",
    "FIXED_DIST_LENGTHS",
    "dist_symbol",
]

MIN_MATCH = 3
MAX_MATCH = 258
WINDOW_SIZE = 32768
END_OF_BLOCK = 256

# Length codes 257..285: (base length, extra bits).  RFC 1951 §3.2.5.
_LENGTH_TABLE = [
    (3, 0), (4, 0), (5, 0), (6, 0), (7, 0), (8, 0), (9, 0), (10, 0),
    (11, 1), (13, 1), (15, 1), (17, 1),
    (19, 2), (23, 2), (27, 2), (31, 2),
    (35, 3), (43, 3), (51, 3), (59, 3),
    (67, 4), (83, 4), (99, 4), (115, 4),
    (131, 5), (163, 5), (195, 5), (227, 5),
    (258, 0),
]
LENGTH_BASE = np.array([b for b, _ in _LENGTH_TABLE], dtype=np.int32)
LENGTH_EXTRA = np.array([e for _, e in _LENGTH_TABLE], dtype=np.int32)

# Direct map: match length (3..258) -> length-code index (0..28).
LENGTH_SYM_FOR_LEN = np.zeros(MAX_MATCH + 1, dtype=np.int32)
for _idx in range(len(_LENGTH_TABLE)):
    _base = _LENGTH_TABLE[_idx][0]
    _end = _LENGTH_TABLE[_idx + 1][0] if _idx + 1 < len(_LENGTH_TABLE) else 259
    LENGTH_SYM_FOR_LEN[_base:_end] = _idx
# Length 258 is its own code (28), not part of code 27's extra range.
LENGTH_SYM_FOR_LEN[258] = 28

# Distance codes 0..29: (base distance, extra bits).  RFC 1951 §3.2.5.
_DIST_TABLE = [
    (1, 0), (2, 0), (3, 0), (4, 0),
    (5, 1), (7, 1), (9, 2), (13, 2),
    (17, 3), (25, 3), (33, 4), (49, 4),
    (65, 5), (97, 5), (129, 6), (193, 6),
    (257, 7), (385, 7), (513, 8), (769, 8),
    (1025, 9), (1537, 9), (2049, 10), (3073, 10),
    (4097, 11), (6145, 11), (8193, 12), (12289, 12),
    (16385, 13), (24577, 13),
]
DIST_BASE = np.array([b for b, _ in _DIST_TABLE], dtype=np.int32)
DIST_EXTRA = np.array([e for _, e in _DIST_TABLE], dtype=np.int32)

# Order in which code-length-code lengths are transmitted.  RFC 1951 §3.2.7.
CLCODE_ORDER = np.array(
    [16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15],
    dtype=np.int32,
)

# Fixed Huffman code lengths.  RFC 1951 §3.2.6.
FIXED_LITLEN_LENGTHS = np.concatenate(
    [
        np.full(144, 8, dtype=np.int32),   # 0..143
        np.full(112, 9, dtype=np.int32),   # 144..255
        np.full(24, 7, dtype=np.int32),    # 256..279
        np.full(8, 8, dtype=np.int32),     # 280..287
    ]
)
FIXED_DIST_LENGTHS = np.full(30, 5, dtype=np.int32)


def dist_symbol(distances: np.ndarray) -> np.ndarray:
    """Vectorised map: distance (1..32768) -> distance-code index (0..29)."""
    return (np.searchsorted(DIST_BASE, distances, side="right") - 1).astype(np.int32)
