"""gzip member format (RFC 1952) over raw DEFLATE.

Completes the DEFLATE container family (zlib for in-memory streams,
gzip for files).  PEDAL itself ships zlib framing, but downstream users
of the standalone library (paper §VI, "Sharing experience with PEDAL
users") routinely need gzip-compatible output; this module provides it
over the same from-scratch DEFLATE core, interoperable with the
system's gzip tooling (verified against :mod:`gzip` in the tests).

Layout::

    magic 0x1F 0x8B | CM=8 | FLG | MTIME(4) | XFL | OS
    [optional FEXTRA/FNAME/FCOMMENT/FHCRC fields]
    DEFLATE payload
    CRC32(4, LE) | ISIZE(4, LE)
"""

from __future__ import annotations

import struct

from repro.algorithms.deflate import DeflateConfig, deflate_compress, deflate_decompress
from repro.errors import ChecksumMismatchError, CorruptStreamError
from repro.util.checksums import crc32

__all__ = ["gzip_compress", "gzip_decompress"]

_MAGIC = b"\x1f\x8b"
_CM_DEFLATE = 8
_OS_UNIX = 3

_FTEXT = 1 << 0
_FHCRC = 1 << 1
_FEXTRA = 1 << 2
_FNAME = 1 << 3
_FCOMMENT = 1 << 4


def gzip_compress(
    data: bytes,
    config: DeflateConfig | None = None,
    filename: str | None = None,
    mtime: int = 0,
) -> bytes:
    """Compress ``data`` into a single gzip member.

    ``mtime`` defaults to 0 (no timestamp) so output is deterministic.
    """
    flg = _FNAME if filename else 0
    out = bytearray()
    out += _MAGIC
    out.append(_CM_DEFLATE)
    out.append(flg)
    out += struct.pack("<I", mtime & 0xFFFFFFFF)
    out.append(0)  # XFL
    out.append(_OS_UNIX)
    if filename:
        out += filename.encode("latin-1") + b"\x00"
    out += deflate_compress(data, config)
    out += struct.pack("<I", crc32(data))
    out += struct.pack("<I", len(data) & 0xFFFFFFFF)
    return bytes(out)


def _skip_zero_terminated(blob: bytes, pos: int) -> int:
    end = blob.find(b"\x00", pos)
    if end < 0:
        raise CorruptStreamError("unterminated gzip string field")
    return end + 1


def gzip_decompress(blob: bytes, max_output: int | None = None) -> bytes:
    """Decompress one gzip member, verifying CRC32 and ISIZE."""
    if len(blob) < 18:
        raise CorruptStreamError("gzip member shorter than header + trailer")
    if blob[:2] != _MAGIC:
        raise CorruptStreamError("bad gzip magic")
    if blob[2] != _CM_DEFLATE:
        raise CorruptStreamError(f"unsupported gzip method {blob[2]}")
    flg = blob[3]
    if flg & 0xE0:
        raise CorruptStreamError("reserved gzip FLG bits set")
    pos = 10
    if flg & _FEXTRA:
        if len(blob) < pos + 2:
            raise CorruptStreamError("truncated FEXTRA")
        (xlen,) = struct.unpack_from("<H", blob, pos)
        pos += 2 + xlen
    if flg & _FNAME:
        pos = _skip_zero_terminated(blob, pos)
    if flg & _FCOMMENT:
        pos = _skip_zero_terminated(blob, pos)
    if flg & _FHCRC:
        if len(blob) < pos + 2:
            raise CorruptStreamError("truncated FHCRC")
        (stored_hcrc,) = struct.unpack_from("<H", blob, pos)
        actual_hcrc = crc32(blob[:pos]) & 0xFFFF
        if stored_hcrc != actual_hcrc:
            raise ChecksumMismatchError("gzip header", stored_hcrc, actual_hcrc)
        pos += 2
    if len(blob) < pos + 8:
        raise CorruptStreamError("gzip member missing trailer")

    payload = blob[pos:-8]
    data = deflate_decompress(payload, max_output=max_output)
    stored_crc, isize = struct.unpack_from("<II", blob, len(blob) - 8)
    actual_crc = crc32(data)
    if stored_crc != actual_crc:
        raise ChecksumMismatchError("gzip crc32", stored_crc, actual_crc)
    if isize != len(data) & 0xFFFFFFFF:
        raise CorruptStreamError(
            f"gzip ISIZE mismatch: header {isize}, actual {len(data)}"
        )
    return data
