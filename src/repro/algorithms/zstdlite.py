"""zstd-lite — a fast LZ + Huffman codec standing in for zstd.

The real SZ3 defaults to zstd for its final lossless stage.  zstd itself
(FSE/tANS entropy stage, multi-table sequences) is out of scope, but the
*role* it plays in the paper — a lossless backend distinctly faster than
DEFLATE-on-SoC at a similar ratio class (paper §V-C.2 uses this to
explain why BF3's SoC beats its C-Engine path on SZ3) — is preserved:
this codec runs a greedy, shallow-chain matcher (no lazy evaluation)
feeding the same bulk Huffman machinery, roughly 3-4x faster than our
DEFLATE at a modest ratio cost.

Container format (little-endian)::

    magic  b"ZSL1"
    u64    content size
    u32    xxh32 of the content
    bytes  DEFLATE-bitstream payload produced with the fast matcher
"""

from __future__ import annotations

import struct

from repro.algorithms.deflate import DeflateConfig, deflate_compress, deflate_decompress
from repro.algorithms.lz77 import MatcherConfig
from repro.errors import ChecksumMismatchError, CorruptStreamError
from repro.util.xxhash32 import xxh32

__all__ = ["zstdlite_compress", "zstdlite_decompress", "FAST_MATCHER"]

_MAGIC = b"ZSL1"

FAST_MATCHER = MatcherConfig(max_chain=8, lazy=False, good_match=16)
_FAST_CONFIG = DeflateConfig(matcher=FAST_MATCHER)


def zstdlite_compress(data: bytes) -> bytes:
    """Compress ``data`` into a zstd-lite container."""
    payload = deflate_compress(data, _FAST_CONFIG)
    return _MAGIC + struct.pack("<QI", len(data), xxh32(data)) + payload


def zstdlite_decompress(blob: bytes, max_output: int | None = None) -> bytes:
    """Decompress a zstd-lite container."""
    if len(blob) < 16 or blob[:4] != _MAGIC:
        raise CorruptStreamError("not a zstd-lite container")
    size, checksum = struct.unpack_from("<QI", blob, 4)
    if max_output is not None and size > max_output:
        raise CorruptStreamError("declared content size exceeds output limit")
    data = deflate_decompress(blob[16:], max_output=size)
    if len(data) != size:
        raise CorruptStreamError(
            f"content size mismatch: header says {size}, got {len(data)}"
        )
    actual = xxh32(data)
    if actual != checksum:
        raise ChecksumMismatchError("xxh32", checksum, actual)
    return data
