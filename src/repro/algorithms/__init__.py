"""From-scratch compression algorithms.

These are the four algorithms PEDAL unifies (paper Table I):

========  =======================================  ========
Algorithm  Purpose                                  Kind
========  =======================================  ========
DEFLATE   general data compression (RFC 1951)      lossless
zlib      general data compression (RFC 1950)      lossless
LZ4       general data compression (block+frame)   lossless
SZ3       scientific data compression               lossy
========  =======================================  ========

plus their substrates (LZ77 matching, canonical Huffman coding), a
small zstd-lite entropy backend used as SZ3's default lossless stage,
and the EDPC-style adaptive-context range coder (``ac``) — an order-N
byte-context model feeding a carry-aware range coder with a decoupled
model/coder dataflow (see :mod:`repro.algorithms.ac`).

All codecs here are *pure algorithm* implementations operating on bytes
in, bytes out — they know nothing about DPUs.  Hardware placement (SoC
vs C-Engine) is modelled in :mod:`repro.dpu` / :mod:`repro.doca` and
orchestrated by :mod:`repro.core`.
"""

from repro.algorithms import ac, deflate, lz4, sz3
from repro.algorithms.zlib_format import zlib_compress, zlib_decompress

__all__ = ["ac", "deflate", "lz4", "sz3", "zlib_compress", "zlib_decompress"]
