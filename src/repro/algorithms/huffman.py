"""Canonical Huffman coding.

Three pieces, shared by DEFLATE and the SZ3 encoder stage:

* :func:`code_lengths` — optimal *length-limited* code lengths from symbol
  frequencies via the package-merge algorithm (Larmore & Hirschberg 1990).
  Package-merge is exactly optimal under a maximum-length constraint,
  which DEFLATE needs (15-bit limit for literal/length and distance codes,
  7-bit limit for the code-length alphabet).
* :func:`canonical_codes` — RFC 1951 canonical code assignment from
  lengths (shorter codes numerically first, ties broken by symbol order).
* :class:`HuffmanDecoder` — flat-table decoder: one table lookup per
  symbol against an LSB-first :class:`~repro.util.bitio.BitReader`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CorruptStreamError
from repro.obs.profile import get_profiler
from repro.util.bitio import BitReader, reverse_bits
from repro.util.kernels import scalar_kernels

__all__ = [
    "code_lengths",
    "canonical_codes",
    "lsb_codes",
    "HuffmanDecoder",
]


def code_lengths(freqs: np.ndarray, max_bits: int) -> np.ndarray:
    """Optimal code lengths under a ``max_bits`` limit (package-merge).

    Parameters
    ----------
    freqs:
        Non-negative symbol frequencies; zero-frequency symbols get
        length 0 (i.e. no code).
    max_bits:
        Maximum permitted code length.

    Returns
    -------
    numpy.ndarray
        ``int32`` array of per-symbol code lengths.

    Raises
    ------
    ValueError
        If the used alphabet cannot be coded within ``max_bits``
        (i.e. more than ``2**max_bits`` used symbols).
    """
    with get_profiler().kernel("huffman.build"):
        return _code_lengths(freqs, max_bits)


def _code_lengths(freqs: np.ndarray, max_bits: int) -> np.ndarray:
    freqs = np.asarray(freqs, dtype=np.int64)
    n_symbols = freqs.size
    used = np.flatnonzero(freqs > 0)
    lengths = np.zeros(n_symbols, dtype=np.int32)

    if used.size == 0:
        return lengths
    if used.size == 1:
        # A single symbol still needs one bit on the wire.
        lengths[used[0]] = 1
        return lengths
    if used.size > (1 << max_bits):
        raise ValueError(
            f"{used.size} symbols cannot be coded in {max_bits}-bit codes"
        )

    # Leaves sorted by frequency.  Each item is (freq, tuple_of_leaf_ids)
    # where leaf ids index into `used`.
    order = used[np.argsort(freqs[used], kind="stable")]
    leaves = [(int(freqs[s]), (int(s),)) for s in order]

    packages = list(leaves)
    for _ in range(max_bits - 1):
        # Pair up adjacent packages; drop a trailing odd one.
        merged = [
            (packages[i][0] + packages[i + 1][0], packages[i][1] + packages[i + 1][1])
            for i in range(0, len(packages) - 1, 2)
        ]
        # Merge the new packages back with the original leaves, keeping
        # the combined list sorted by frequency.
        packages = sorted(leaves + merged, key=lambda item: item[0])

    # The first 2n-2 items determine the code: each occurrence of a leaf
    # adds one to its code length.
    for _freq, members in packages[: 2 * used.size - 2]:
        for sym in members:
            lengths[sym] += 1
    return lengths


def canonical_codes(lengths: np.ndarray) -> np.ndarray:
    """Assign canonical (MSB-first) codes from code lengths, per RFC 1951.

    Symbols with length 0 receive code 0 (unused).
    """
    lengths = np.asarray(lengths, dtype=np.int32)
    if lengths.size == 0:
        return np.zeros(0, dtype=np.uint32)
    max_bits = int(lengths.max(initial=0))
    codes = np.zeros(lengths.size, dtype=np.uint32)
    if max_bits == 0:
        return codes

    bl_count = np.bincount(lengths, minlength=max_bits + 1)
    bl_count[0] = 0
    next_code = np.zeros(max_bits + 1, dtype=np.int64)
    code = 0
    for bits in range(1, max_bits + 1):
        code = (code + int(bl_count[bits - 1])) << 1
        next_code[bits] = code
        # Over-subscribed trees are caller bugs (encoder) or stream
        # corruption (decoder builds via HuffmanDecoder which re-checks).
        if code + int(bl_count[bits]) > (1 << bits):
            raise CorruptStreamError(f"over-subscribed Huffman tree at length {bits}")

    if scalar_kernels():
        # Scalar reference: walk symbols in order, consuming next_code.
        for sym in np.flatnonzero(lengths > 0):
            bits = int(lengths[sym])
            codes[sym] = next_code[bits]
            next_code[bits] += 1
        return codes

    # Vectorized assignment: within one length, canonical codes are
    # consecutive in symbol order, so each symbol's code is
    # ``next_code[len] + rank-within-length``.  A stable argsort by
    # length yields (length, symbol) order; the rank is the distance to
    # the first entry of the same length.
    syms = np.flatnonzero(lengths > 0)
    if syms.size:
        lens = lengths[syms].astype(np.int64)
        by_len = np.argsort(lens, kind="stable")
        sorted_lens = lens[by_len]
        first_of_len = np.searchsorted(sorted_lens, sorted_lens, side="left")
        ranks = np.arange(sorted_lens.size, dtype=np.int64) - first_of_len
        codes[syms[by_len]] = (next_code[sorted_lens] + ranks).astype(np.uint32)
    return codes


def lsb_codes(lengths: np.ndarray) -> np.ndarray:
    """Canonical codes pre-reversed into LSB-first wire order.

    DEFLATE transmits Huffman codes most-significant-bit first inside an
    LSB-first byte stream, which is equivalent to writing the
    bit-reversed code LSB-first.  Reversal is vectorised one bit-plane at
    a time.
    """
    lengths = np.asarray(lengths, dtype=np.int32)
    codes = canonical_codes(lengths)
    max_bits = int(lengths.max(initial=0))
    out = np.zeros_like(codes)
    work = codes.copy()
    for _ in range(max_bits):
        out = (out << np.uint32(1)) | (work & np.uint32(1))
        work >>= np.uint32(1)
    # Each code was reversed as if it were max_bits wide; shift away the
    # surplus low zero bits for shorter codes.
    shift = (max_bits - lengths).clip(min=0).astype(np.uint32)
    out >>= shift
    out[lengths == 0] = 0
    return out


class HuffmanDecoder:
    """Flat-table canonical Huffman decoder for LSB-first streams.

    The table has ``2**max_bits`` entries; entry ``i`` packs
    ``(code_length << 9) | symbol`` for the unique code that is a prefix
    of the bit pattern ``i`` (read LSB-first).  Symbols must therefore be
    < 512 — ample for every alphabet DEFLATE and SZ3 use.
    """

    __slots__ = ("table", "max_bits", "n_symbols", "_complete")

    def __init__(self, lengths: np.ndarray) -> None:
        lengths = np.asarray(lengths, dtype=np.int32)
        if lengths.size > 512:
            raise ValueError("HuffmanDecoder supports alphabets up to 512 symbols")
        self.n_symbols = lengths.size
        max_bits = int(lengths.max(initial=0))
        if max_bits == 0:
            raise CorruptStreamError("empty Huffman tree")
        self.max_bits = max_bits
        codes = canonical_codes(lengths)

        table = np.zeros(1 << max_bits, dtype=np.uint32)
        kraft = 0
        for sym in np.flatnonzero(lengths > 0):
            nbits = int(lengths[sym])
            kraft += 1 << (max_bits - nbits)
            rev = reverse_bits(int(codes[sym]), nbits)
            # All peeked values whose low `nbits` bits equal `rev` decode
            # to this symbol: indices rev, rev + 2^nbits, rev + 2*2^nbits, ...
            table[rev :: 1 << nbits] = (nbits << 9) | int(sym)
        self.table = table
        self._complete = kraft == (1 << max_bits)

    @property
    def is_complete(self) -> bool:
        """True if the code exactly fills the code space (Kraft equality)."""
        return self._complete

    def decode(self, reader: BitReader) -> int:
        """Decode one symbol from ``reader``."""
        entry = int(self.table[reader.peek_bits(self.max_bits)])
        if entry == 0:
            raise CorruptStreamError("invalid Huffman code in stream")
        reader.skip_bits(entry >> 9)
        return entry & 0x1FF
