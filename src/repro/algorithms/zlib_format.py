"""zlib stream format (RFC 1950) over raw DEFLATE.

zlib = 2-byte header (CMF/FLG) + DEFLATE payload + 4-byte big-endian
Adler-32 of the *uncompressed* data.  This split is exactly what PEDAL's
hybrid zlib design exploits (paper Fig. 3): the header/trailer
computation stays on the SoC while the DEFLATE payload is produced by
the C-Engine.  The functions here therefore expose the header/trailer
pieces separately in addition to the one-shot codec.
"""

from __future__ import annotations

from repro.algorithms.deflate import DeflateConfig, deflate_compress, deflate_decompress
from repro.errors import ChecksumMismatchError, CorruptStreamError
from repro.util.checksums import adler32

__all__ = [
    "zlib_compress",
    "zlib_decompress",
    "build_zlib_header",
    "build_zlib_trailer",
    "parse_zlib_header",
    "assemble_zlib_stream",
]

_CM_DEFLATE = 8
_CINFO_32K = 7  # 32 KiB window


def build_zlib_header(level_hint: int = 2) -> bytes:
    """Construct the CMF/FLG pair.

    ``level_hint`` is the 2-bit FLEVEL advisory field (0=fastest..3=max).
    FCHECK is chosen so the 16-bit header is a multiple of 31 (RFC 1950).
    """
    if not 0 <= level_hint <= 3:
        raise ValueError("level_hint must be in 0..3")
    cmf = (_CINFO_32K << 4) | _CM_DEFLATE
    flg = level_hint << 6  # FDICT=0
    rem = (cmf * 256 + flg) % 31
    if rem:
        flg += 31 - rem
    return bytes([cmf, flg])


def build_zlib_trailer(data: bytes) -> bytes:
    """Big-endian Adler-32 of the uncompressed data."""
    return adler32(data).to_bytes(4, "big")


def parse_zlib_header(stream: bytes) -> int:
    """Validate the 2-byte header; return the advisory FLEVEL."""
    if len(stream) < 2:
        raise CorruptStreamError("zlib stream shorter than its header")
    cmf, flg = stream[0], stream[1]
    if cmf & 0x0F != _CM_DEFLATE:
        raise CorruptStreamError(f"unsupported zlib compression method {cmf & 0x0F}")
    if (cmf >> 4) > 7:
        raise CorruptStreamError("invalid zlib window size (CINFO > 7)")
    if (cmf * 256 + flg) % 31 != 0:
        raise CorruptStreamError("zlib header FCHECK failure")
    if flg & 0x20:
        raise CorruptStreamError("preset dictionaries (FDICT) are not supported")
    return flg >> 6


def assemble_zlib_stream(deflate_payload: bytes, header: bytes, trailer: bytes) -> bytes:
    """Concatenate independently produced header/payload/trailer.

    This is the assembly step of the SoC+C-Engine hybrid path.
    """
    return header + deflate_payload + trailer


def zlib_compress(data: bytes, config: DeflateConfig | None = None) -> bytes:
    """One-shot zlib compression (header + DEFLATE + Adler-32)."""
    return assemble_zlib_stream(
        deflate_compress(data, config),
        build_zlib_header(),
        build_zlib_trailer(data),
    )


def zlib_decompress(stream: bytes, max_output: int | None = None) -> bytes:
    """One-shot zlib decompression with Adler-32 verification."""
    parse_zlib_header(stream)
    if len(stream) < 6:
        raise CorruptStreamError("zlib stream shorter than header + trailer")
    payload = stream[2:-4]
    data = deflate_decompress(payload, max_output=max_output)
    stored = int.from_bytes(stream[-4:], "big")
    actual = adler32(data)
    if stored != actual:
        raise ChecksumMismatchError("adler32", stored, actual)
    return data
