"""LZ4 frame format (v1.6.x container spec).

Layout produced here::

    magic (4B, 0x184D2204 LE)
    FLG   (version=01, block-independence=1, content-checksum=1,
           content-size=1)
    BD    (block max size code)
    content size (8B LE)
    HC    (byte 1 of xxh32 of the descriptor)
    [ block: 4B LE size, high bit set => stored uncompressed ] ...
    end mark (4B zero)
    content checksum (xxh32 of the uncompressed data, 4B LE)

Per-block compression falls back to stored form whenever the LZ4 block
would not shrink the data (the spec's uncompressed-block flag).
"""

from __future__ import annotations

import struct

from repro.algorithms.lz4.block import (
    Lz4Config,
    lz4_block_compress,
    lz4_block_decompress,
)
from repro.errors import ChecksumMismatchError, CorruptStreamError
from repro.util.xxhash32 import xxh32

__all__ = ["lz4_compress", "lz4_decompress", "MAGIC"]

MAGIC = 0x184D2204
_UNCOMPRESSED_FLAG = 0x80000000

# Block-max-size table: code 4..7 => 64 KiB, 256 KiB, 1 MiB, 4 MiB.
_BLOCK_SIZES = {4: 64 << 10, 5: 256 << 10, 6: 1 << 20, 7: 4 << 20}
_DEFAULT_BD_CODE = 7


def lz4_compress(
    data: bytes,
    config: Lz4Config | None = None,
    block_size_code: int = _DEFAULT_BD_CODE,
) -> bytes:
    """Compress ``data`` into a standalone LZ4 frame."""
    if block_size_code not in _BLOCK_SIZES:
        raise ValueError(f"block_size_code must be one of {sorted(_BLOCK_SIZES)}")
    block_size = _BLOCK_SIZES[block_size_code]

    flg = (1 << 6) | (1 << 5) | (1 << 3) | (1 << 2)  # v01, B.Indep, C.Size, C.Checksum
    bd = block_size_code << 4
    descriptor = bytes([flg, bd]) + struct.pack("<Q", len(data))
    hc = (xxh32(descriptor) >> 8) & 0xFF

    out = bytearray()
    out += struct.pack("<I", MAGIC)
    out += descriptor
    out.append(hc)

    for start in range(0, len(data), block_size):
        chunk = data[start : start + block_size]
        compressed = lz4_block_compress(chunk, config)
        if len(compressed) < len(chunk):
            out += struct.pack("<I", len(compressed))
            out += compressed
        else:
            out += struct.pack("<I", len(chunk) | _UNCOMPRESSED_FLAG)
            out += chunk

    out += struct.pack("<I", 0)  # end mark
    out += struct.pack("<I", xxh32(data))
    return bytes(out)


def lz4_decompress(frame: bytes, max_output: int | None = None) -> bytes:
    """Decompress a standalone LZ4 frame produced by :func:`lz4_compress`."""
    if len(frame) < 7:
        raise CorruptStreamError("LZ4 frame shorter than its header")
    (magic,) = struct.unpack_from("<I", frame, 0)
    if magic != MAGIC:
        raise CorruptStreamError(f"bad LZ4 magic 0x{magic:08x}")
    flg = frame[4]
    if (flg >> 6) != 1:
        raise CorruptStreamError("unsupported LZ4 frame version")
    has_content_size = bool(flg & (1 << 3))
    has_content_checksum = bool(flg & (1 << 2))
    has_block_checksum = bool(flg & (1 << 4))
    if flg & 0x03:
        raise CorruptStreamError("reserved FLG bits set")

    pos = 6
    expected_size: int | None = None
    if has_content_size:
        if len(frame) < pos + 8:
            raise CorruptStreamError("truncated content-size field")
        (expected_size,) = struct.unpack_from("<Q", frame, pos)
        pos += 8
    descriptor = frame[4:pos]
    if pos >= len(frame):
        raise CorruptStreamError("truncated frame descriptor")
    hc = frame[pos]
    pos += 1
    if hc != (xxh32(descriptor) >> 8) & 0xFF:
        raise ChecksumMismatchError("LZ4 header", hc, (xxh32(descriptor) >> 8) & 0xFF)

    out = bytearray()
    while True:
        if len(frame) < pos + 4:
            raise CorruptStreamError("truncated block size field")
        (raw_size,) = struct.unpack_from("<I", frame, pos)
        pos += 4
        if raw_size == 0:
            break
        stored = bool(raw_size & _UNCOMPRESSED_FLAG)
        size = raw_size & ~_UNCOMPRESSED_FLAG
        if len(frame) < pos + size:
            raise CorruptStreamError("truncated block payload")
        payload = frame[pos : pos + size]
        pos += size
        if has_block_checksum:
            pos += 4  # we never emit these; skip if present
        if stored:
            out += payload
        else:
            remaining = None if max_output is None else max_output - len(out)
            out += lz4_block_decompress(payload, max_output=remaining)

    data = bytes(out)
    if has_content_checksum:
        if len(frame) < pos + 4:
            raise CorruptStreamError("truncated content checksum")
        (stored_sum,) = struct.unpack_from("<I", frame, pos)
        actual = xxh32(data)
        if stored_sum != actual:
            raise ChecksumMismatchError("xxh32", stored_sum, actual)
    if expected_size is not None and expected_size != len(data):
        raise CorruptStreamError(
            f"content size mismatch: header says {expected_size}, got {len(data)}"
        )
    return data
