"""LZ4 block format codec.

Format (per the LZ4 block specification): a sequence is

* a token byte — high nibble: literal run length (15 ⇒ continued in
  255-saturated extension bytes), low nibble: match length − 4 (15 ⇒
  continued likewise);
* the literal bytes;
* a 2-byte little-endian match offset (1..65535);
* optional match-length extension bytes.

End-of-block rules honoured by the compressor: the last sequence is
literal-only, the final 5 bytes are always literals, and no match starts
within the last 12 bytes (``MFLIMIT``).

The matcher is LZ4-style greedy with a single-probe hash table and the
reference implementation's *step acceleration*: after repeated probe
misses the scan stride grows, so incompressible regions are skipped at
amortised O(1) per byte.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CorruptStreamError, OutputOverflowError

__all__ = ["Lz4Config", "lz4_block_compress", "lz4_block_decompress"]

_MIN_MATCH = 4
_MFLIMIT = 12  # no match may start within the last 12 bytes
_LAST_LITERALS = 5
_MAX_OFFSET = 65535
_HASH_BITS = 16


@dataclass(frozen=True)
class Lz4Config:
    """Compressor tuning.

    ``acceleration`` mirrors liblz4's parameter: higher values skip
    faster through incompressible data at some ratio cost.
    """

    acceleration: int = 1

    def __post_init__(self) -> None:
        if self.acceleration < 1:
            raise ValueError("acceleration must be >= 1")


def _hash_all(data: bytes) -> list[int]:
    """4-byte multiplicative hash for every position with i+3 < len."""
    buf = np.frombuffer(data, dtype=np.uint8).astype(np.uint32)
    if buf.size < 4:
        return []
    word = (
        buf[:-3]
        | (buf[1:-2] << np.uint32(8))
        | (buf[2:-1] << np.uint32(16))
        | (buf[3:] << np.uint32(24))
    )
    h = (word * np.uint32(2654435761)) >> np.uint32(32 - _HASH_BITS)
    return h.tolist()


def _write_varlen(out: bytearray, value: int) -> None:
    """255-saturated length extension bytes."""
    while value >= 255:
        out.append(255)
        value -= 255
    out.append(value)


def _emit_sequence(
    out: bytearray, literals: bytes, match_len: int, offset: int
) -> None:
    lit_len = len(literals)
    token_lit = min(lit_len, 15)
    if match_len:
        token_match = min(match_len - _MIN_MATCH, 15)
    else:
        token_match = 0
    out.append((token_lit << 4) | token_match)
    if token_lit == 15:
        _write_varlen(out, lit_len - 15)
    out += literals
    if match_len:
        out += offset.to_bytes(2, "little")
        if token_match == 15:
            _write_varlen(out, match_len - _MIN_MATCH - 15)


def lz4_block_compress(data: bytes, config: Lz4Config | None = None) -> bytes:
    """Compress ``data`` into a single LZ4 block."""
    cfg = config or Lz4Config()
    n = len(data)
    out = bytearray()
    if n == 0:
        return bytes(out)
    if n < _MFLIMIT + 1:
        _emit_sequence(out, data, 0, 0)
        return bytes(out)

    hashes = _hash_all(data)
    table = [-1] * (1 << _HASH_BITS)
    match_limit = n - _MFLIMIT  # last position where a match may start
    anchor = 0
    i = 0
    skip_trigger = 6 + cfg.acceleration  # probe misses before stride grows

    while i <= match_limit:
        # --- search for a match at i (with step acceleration) ---
        misses = 1 << skip_trigger
        cand = -1
        while True:
            if i > match_limit:
                cand = -1
                break
            h = hashes[i]
            cand = table[h]
            table[h] = i
            if (
                cand >= 0
                and i - cand <= _MAX_OFFSET
                and data[cand : cand + 4] == data[i : i + 4]
            ):
                break
            step = misses >> skip_trigger
            misses += 1
            i += step
            cand = -1
        if cand < 0:
            break

        # Extend backward over pending literals.
        while i > anchor and cand > 0 and data[i - 1] == data[cand - 1]:
            i -= 1
            cand -= 1

        # Extend forward, stopping before the trailing literal region.
        limit = n - _LAST_LITERALS
        mlen = 4
        while i + mlen + 16 <= limit and (
            data[cand + mlen : cand + mlen + 16] == data[i + mlen : i + mlen + 16]
        ):
            mlen += 16
        while i + mlen < limit and data[cand + mlen] == data[i + mlen]:
            mlen += 1

        _emit_sequence(out, data[anchor:i], mlen, i - cand)
        i += mlen
        anchor = i
        # Seed the table for intra-match positions (sparse, like lz4 fast).
        if i - 2 > cand and i - 2 <= match_limit:
            table[hashes[i - 2]] = i - 2

    _emit_sequence(out, data[anchor:], 0, 0)
    return bytes(out)


def lz4_block_decompress(
    block: bytes, max_output: int | None = None
) -> bytes:
    """Decompress a single LZ4 block."""
    out = bytearray()
    i = 0
    n = len(block)
    if n == 0:
        return b""
    while i < n:
        token = block[i]
        i += 1
        lit_len = token >> 4
        if lit_len == 15:
            while True:
                if i >= n:
                    raise CorruptStreamError("truncated literal-length extension")
                b = block[i]
                i += 1
                lit_len += b
                if b != 255:
                    break
        if i + lit_len > n:
            raise CorruptStreamError("literal run overruns block")
        out += block[i : i + lit_len]
        i += lit_len
        if max_output is not None and len(out) > max_output:
            raise OutputOverflowError("LZ4 output exceeds limit")
        if i == n:
            break  # final, literal-only sequence
        if i + 2 > n:
            raise CorruptStreamError("truncated match offset")
        offset = int.from_bytes(block[i : i + 2], "little")
        i += 2
        if offset == 0:
            raise CorruptStreamError("zero match offset")
        match_len = (token & 0x0F) + _MIN_MATCH
        if token & 0x0F == 15:
            while True:
                if i >= n:
                    raise CorruptStreamError("truncated match-length extension")
                b = block[i]
                i += 1
                match_len += b
                if b != 255:
                    break
        start = len(out) - offset
        if start < 0:
            raise CorruptStreamError("match offset before start of output")
        if offset >= match_len:
            out += out[start : start + match_len]
        else:
            for k in range(match_len):  # overlapping copy
                out.append(out[start + k])
        if max_output is not None and len(out) > max_output:
            raise OutputOverflowError("LZ4 output exceeds limit")
    return bytes(out)
