"""LZ4 — from-scratch block codec and frame format.

The block codec (:mod:`repro.algorithms.lz4.block`) implements the LZ4
block specification (token/literals/offset sequences, greedy single-probe
hash matching with incompressible-data step acceleration).  The frame
codec (:mod:`repro.algorithms.lz4.frame`) wraps blocks in the LZ4 frame
container: magic number, frame descriptor with xxHash32 header check,
per-frame content checksum.

Public API
----------
:func:`lz4_compress` / :func:`lz4_decompress` — frame-level codec (the
form PEDAL ships over the wire).
:func:`lz4_block_compress` / :func:`lz4_block_decompress` — raw blocks.
"""

from repro.algorithms.lz4.block import (
    Lz4Config,
    lz4_block_compress,
    lz4_block_decompress,
)
from repro.algorithms.lz4.frame import lz4_compress, lz4_decompress

__all__ = [
    "Lz4Config",
    "lz4_block_compress",
    "lz4_block_decompress",
    "lz4_compress",
    "lz4_decompress",
]
