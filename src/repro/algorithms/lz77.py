"""LZ77 string matching — the shared substrate of DEFLATE and LZ4.

A hash-chain matcher in the spirit of zlib's ``deflate_slow``: a rolling
3-byte hash indexes chains of previous positions; candidates are walked
newest-first; an optional one-step *lazy* evaluation defers a match when
the next position matches longer.

Two byte-identical implementations live here, selected via
:mod:`repro.util.kernels`:

* :func:`_tokenize` — the scalar reference: per-position hash-chain
  inserts and a head-table walk, exactly as zlib structures it.
* :func:`_tokenize_vec` — the vectorized kernel.  Every position is
  inserted into its chain exactly once, in increasing position order,
  *before* it can ever be a candidate, so the entire chain table is a
  pure function of the input and can be precomputed in one shot: a
  stable argsort by hash links each position to the most recent earlier
  position in its bucket (``prev_all``).  The per-byte insert work
  vanishes from the scan loop, and literal runs are emitted in bulk: a
  second table keyed on exact *trigrams* (not hashes, which alias)
  marks the positions with an in-window 3-byte-equal predecessor — any
  match is at least ``min_match >= 3`` long, so every other position
  provably emits a literal and is skipped without a walk.  The chain walk
  itself keeps the scalar's exact candidate order, quick-reject,
  ``good_match`` shortening and lazy semantics, so the token streams
  are identical (enforced by ``tests/algorithms/test_kernel_equivalence``
  and by the golden vectors, which predate the rewrite).

Match extension compares 16-byte slices before falling back to per-byte
comparison; inputs may be ``bytes`` or ``memoryview`` (slicing stays
zero-copy either way).

The output is a token stream of literals and ``(length, distance)``
copies, encoded as two parallel Python lists for cheap conversion to
numpy arrays by the entropy coders.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.profile import get_profiler
from repro.util.kernels import scalar_kernels

__all__ = ["MatcherConfig", "TokenStream", "tokenize", "reconstruct"]

_HASH_BITS = 15
_HASH_SIZE = 1 << _HASH_BITS


@dataclass(frozen=True)
class MatcherConfig:
    """Tuning knobs for the hash-chain matcher.

    Defaults approximate zlib level 6.  ``window_size`` must not exceed
    32768 for DEFLATE compatibility; LZ4 uses 65536.
    """

    window_size: int = 32768
    min_match: int = 3
    max_match: int = 258
    max_chain: int = 48
    lazy: bool = True
    good_match: int = 32  # shorten the chain walk once a match this long is found

    def __post_init__(self) -> None:
        if self.min_match < 3:
            raise ValueError("min_match must be >= 3 (3-byte hash)")
        if self.max_match < self.min_match:
            raise ValueError("max_match must be >= min_match")
        if self.window_size < 1:
            raise ValueError("window_size must be positive")


class TokenStream:
    """Parallel-array token stream.

    ``lengths[i] == 0`` marks a literal whose byte value is ``values[i]``;
    otherwise the token is a copy of ``lengths[i]`` bytes from
    ``values[i]`` bytes back.
    """

    __slots__ = ("lengths", "values", "n_input")

    def __init__(self, lengths: list[int], values: list[int], n_input: int) -> None:
        self.lengths = lengths
        self.values = values
        self.n_input = n_input

    def __len__(self) -> int:
        return len(self.lengths)

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(lengths, values)`` as ``int32`` numpy arrays."""
        return (
            np.asarray(self.lengths, dtype=np.int32),
            np.asarray(self.values, dtype=np.int32),
        )

    def n_literals(self) -> int:
        return sum(1 for l in self.lengths if l == 0)

    def n_matches(self) -> int:
        return len(self.lengths) - self.n_literals()


def _hash_all(data: bytes) -> np.ndarray:
    """3-byte multiplicative hash for every position with i+2 < len."""
    buf = np.frombuffer(data, dtype=np.uint8).astype(np.uint32)
    if buf.size < 3:
        return np.zeros(0, dtype=np.int64)
    h = (buf[:-2] << np.uint32(16)) ^ (buf[1:-1] << np.uint32(8)) ^ buf[2:]
    h = (h * np.uint32(2654435761)) >> np.uint32(32 - _HASH_BITS)
    return h.astype(np.int64)


def _match_length(data: bytes, cand: int, pos: int, limit: int) -> int:
    """Longest l <= limit with data[cand:cand+l] == data[pos:pos+l]."""
    l = 0
    # 16-byte strides first.
    while l + 16 <= limit and data[cand + l : cand + l + 16] == data[pos + l : pos + l + 16]:
        l += 16
    while l < limit and data[cand + l] == data[pos + l]:
        l += 1
    return l


def tokenize(data: bytes, config: MatcherConfig | None = None) -> TokenStream:
    """Factor ``data`` into an LZ77 token stream.

    Dispatches to the vectorized kernel unless the scalar reference is
    selected (``REPRO_SCALAR_KERNELS`` / ``force_kernel_mode``); both
    produce identical token streams.
    """
    with get_profiler().kernel("lz77.match_loop"):
        if scalar_kernels():
            return _tokenize(data, config)
        return _tokenize_vec(data, config)


def _tokenize(data: bytes, config: MatcherConfig | None) -> TokenStream:
    cfg = config or MatcherConfig()
    n = len(data)
    lengths: list[int] = []
    values: list[int] = []
    if n == 0:
        return TokenStream(lengths, values, 0)

    hashes = _hash_all(data)
    head = [-1] * _HASH_SIZE  # most recent position per hash bucket
    prev = [0] * n  # previous position in this bucket's chain

    min_match = cfg.min_match
    max_match = cfg.max_match
    window = cfg.window_size
    max_chain = cfg.max_chain
    good = cfg.good_match
    lazy = cfg.lazy
    n_hash = hashes.shape[0]
    hashes_l = hashes.tolist()  # plain ints: ~3x faster element access

    def longest_match(pos: int) -> tuple[int, int]:
        """Best (length, distance) at ``pos``; (0, 0) if none."""
        best_len = min_match - 1
        best_dist = 0
        limit = min(max_match, n - pos)
        if limit < min_match:
            return 0, 0
        chain = max_chain
        cand = head[hashes_l[pos]]
        low = pos - window
        first_pos = pos
        while cand >= 0 and cand >= low and chain > 0:
            # Quick reject: a longer match must extend past the current best.
            if data[cand + best_len] == data[first_pos + best_len]:
                l = _match_length(data, cand, pos, limit)
                if l > best_len:
                    best_len = l
                    best_dist = pos - cand
                    if l >= limit:
                        break
                    if l >= good:
                        chain >>= 2
            cand = prev[cand]
            chain -= 1
        if best_dist == 0:
            return 0, 0
        return best_len, best_dist

    def insert(pos: int) -> None:
        h = hashes_l[pos]
        prev[pos] = head[h]
        head[h] = pos

    i = 0
    pending: tuple[int, int] | None = None  # deferred (length, dist) at i-1
    while i < n:
        if i < n_hash:
            cur_len, cur_dist = longest_match(i)
            insert(i)
        else:
            cur_len, cur_dist = 0, 0

        if pending is not None:
            pend_len, pend_dist = pending
            if cur_len > pend_len:
                # The deferred position loses; emit its byte as a literal
                # and defer the (strictly longer) current match instead.
                lengths.append(0)
                values.append(data[i - 1])
                pending = (cur_len, cur_dist)
                i += 1
                continue
            # Deferred match wins: emit it; it covers i-1 .. i-2+pend_len.
            # Position i was already inserted above; catch up from i+1.
            lengths.append(pend_len)
            values.append(pend_dist)
            end = i - 1 + pend_len
            j = i + 1
            stop = min(end, n_hash)
            while j < stop:
                insert(j)
                j += 1
            i = end
            pending = None
            continue

        if cur_len >= min_match:
            if lazy and cur_len < max_match and i + 1 < n:
                pending = (cur_len, cur_dist)
                i += 1
                continue
            lengths.append(cur_len)
            values.append(cur_dist)
            end = i + cur_len
            stop = min(end, n_hash)
            i += 1
            while i < stop:
                insert(i)
                i += 1
            i = end
        else:
            lengths.append(0)
            values.append(data[i])
            i += 1

    if pending is not None:
        # Stream ended while deferring: the pending match still applies.
        lengths.append(pending[0])
        values.append(pending[1])
    return TokenStream(lengths, values, n)


def _tokenize_vec(data: bytes, config: MatcherConfig | None) -> TokenStream:
    """Vectorized tokenizer; token-identical to :func:`_tokenize`.

    Correctness argument for the precomputed chain table: in the scalar
    matcher every position ``p < n_hash`` is inserted into its bucket
    exactly once and in increasing position order (the match-emission
    paths insert every covered position in their catch-up loops), and
    always *before* any later position examines the chain.  Therefore
    at the moment position ``pos`` is examined, ``head[hash(pos)]`` is
    precisely the largest ``p < pos`` with the same hash, and the walk
    visits same-hash predecessors in strictly decreasing position
    order.  ``prev_all`` below encodes exactly that relation for every
    position at once, which makes the walk's candidate sequence — and
    hence the emitted tokens — identical by induction.
    """
    cfg = config or MatcherConfig()
    n = len(data)
    lengths: list[int] = []
    values: list[int] = []
    if n == 0:
        return TokenStream(lengths, values, 0)

    hashes = _hash_all(data)
    n_hash = hashes.shape[0]
    window = cfg.window_size
    if n_hash:
        # Batched hash-chain build: one stable argsort groups the
        # buckets; adjacent same-hash entries link each position to its
        # most recent same-hash predecessor.
        # numpy's stable argsort is radix sort only for <= 16-bit keys
        # (timsort otherwise, ~6x slower on megabyte inputs), so sort
        # the 15-bit hashes as uint16 ...
        order = np.argsort(hashes.astype(np.uint16), kind="stable")
        prev_all = np.full(n_hash, -1, dtype=np.int64)
        same = hashes[order[1:]] == hashes[order[:-1]]
        prev_all[order[1:][same]] = order[:-1][same]
        # Literal-run skip table, keyed on exact *trigrams* rather than
        # hashes: any match has length >= min_match >= 3, so its first
        # three bytes agree and the match source is a trigram-equal
        # predecessor inside the window.  A position with no such
        # predecessor provably emits a literal, and every run between
        # two match-capable positions is emitted in bulk below.  Trigram
        # chains are what make this effective on low-redundancy data:
        # hash chains alias ~every position into some bucket
        # (2**15 buckets vs a 32768-byte window), while exact trigram
        # repeats within the window are rare.
        # ... and the 24-bit trigrams with a two-pass LSD radix: stable
        # argsort by the low 16 bits, then by the high byte.
        buf = np.frombuffer(data, dtype=np.uint8).astype(np.uint32)
        tri = (buf[:-2] << np.uint32(16)) | (buf[1:-1] << np.uint32(8)) | buf[2:]
        t_lo = np.argsort(tri.astype(np.uint16), kind="stable")
        t_hi = (tri >> np.uint32(16)).astype(np.uint8)[t_lo]
        t_order = t_lo[np.argsort(t_hi, kind="stable")]
        prev_tri = np.full(n_hash, -1, dtype=np.int64)
        t_same = tri[t_order[1:]] == tri[t_order[:-1]]
        prev_tri[t_order[1:][t_same]] = t_order[:-1][t_same]
        pos_idx = np.arange(n_hash, dtype=np.int64)
        has_cand = prev_tri >= np.maximum(pos_idx - window, 0)
        cand_list = np.flatnonzero(has_cand).tolist()
        prev_l = prev_all.tolist()
    else:
        cand_list = []
        prev_l = []
    ncand = len(cand_list)

    min_match = cfg.min_match
    max_match = cfg.max_match
    max_chain = cfg.max_chain
    good = cfg.good_match
    lazy = cfg.lazy

    def longest_match(pos: int) -> tuple[int, int]:
        """Best (length, distance) at ``pos``; (0, 0) if none."""
        best_len = min_match - 1
        best_dist = 0
        limit = min(max_match, n - pos)
        if limit < min_match:
            return 0, 0
        chain = max_chain
        cand = prev_l[pos]
        low = pos - window
        while cand >= 0 and cand >= low and chain > 0:
            # Quick reject: a longer match must extend past the current best.
            if data[cand + best_len] == data[pos + best_len]:
                l = _match_length(data, cand, pos, limit)
                if l > best_len:
                    best_len = l
                    best_dist = pos - cand
                    if l >= limit:
                        break
                    if l >= good:
                        chain >>= 2
            cand = prev_l[cand]
            chain -= 1
        if best_dist == 0:
            return 0, 0
        return best_len, best_dist

    i = 0
    ci = 0  # cursor into cand_list (monotone; amortized O(ncand) total)
    pending: tuple[int, int] | None = None  # deferred (length, dist) at i-1
    while i < n:
        if pending is None:
            # Bulk-emit the literal run up to the next position that has
            # an in-window candidate (no such position can match).  The
            # cursor re-syncs by galloping: long match jumps would cost
            # one step per covered byte with a linear scan.
            if ci < ncand and cand_list[ci] < i:
                step = 1
                while ci + step < ncand and cand_list[ci + step] < i:
                    step <<= 1
                lo, hi = ci + (step >> 1) + 1, min(ci + step, ncand)
                while lo < hi:
                    mid = (lo + hi) >> 1
                    if cand_list[mid] < i:
                        lo = mid + 1
                    else:
                        hi = mid
                ci = lo
            j = cand_list[ci] if ci < ncand else n
            if j > i:
                values.extend(data[i:j])
                lengths.extend([0] * (j - i))
                i = j
                if i >= n:
                    break
        if i < n_hash:
            cur_len, cur_dist = longest_match(i)
        else:
            cur_len, cur_dist = 0, 0

        if pending is not None:
            pend_len, pend_dist = pending
            if cur_len > pend_len:
                lengths.append(0)
                values.append(data[i - 1])
                pending = (cur_len, cur_dist)
                i += 1
                continue
            lengths.append(pend_len)
            values.append(pend_dist)
            i = i - 1 + pend_len
            pending = None
            continue

        if cur_len >= min_match:
            if lazy and cur_len < max_match and i + 1 < n:
                pending = (cur_len, cur_dist)
                i += 1
                continue
            lengths.append(cur_len)
            values.append(cur_dist)
            i += cur_len
        else:
            lengths.append(0)
            values.append(data[i])
            i += 1

    if pending is not None:
        lengths.append(pending[0])
        values.append(pending[1])
    return TokenStream(lengths, values, n)


def reconstruct(tokens: TokenStream) -> bytes:
    """Inverse of :func:`tokenize` — expand a token stream back to bytes.

    Used by tests as the LZ77-level roundtrip oracle, and by the zstd-lite
    backend's decoder.
    """
    out = bytearray()
    for length, value in zip(tokens.lengths, tokens.values):
        if length == 0:
            out.append(value)
        else:
            start = len(out) - value
            if start < 0:
                raise ValueError("copy distance reaches before start of output")
            for k in range(length):  # may overlap: copy byte-by-byte
                out.append(out[start + k])
    return bytes(out)
