"""LZ77 string matching — the shared substrate of DEFLATE and LZ4.

A hash-chain matcher in the spirit of zlib's ``deflate_slow``: a rolling
3-byte hash indexes chains of previous positions; candidates are walked
newest-first; an optional one-step *lazy* evaluation defers a match when
the next position matches longer.

Hash values for every position are precomputed with numpy in one shot
(the per-position Python work is the bottleneck, so anything hoistable
is hoisted).  Match extension compares 16-byte slices before falling
back to per-byte comparison.

The output is a token stream of literals and ``(length, distance)``
copies, encoded as two parallel Python lists for cheap conversion to
numpy arrays by the entropy coders.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.profile import get_profiler

__all__ = ["MatcherConfig", "TokenStream", "tokenize", "reconstruct"]

_HASH_BITS = 15
_HASH_SIZE = 1 << _HASH_BITS


@dataclass(frozen=True)
class MatcherConfig:
    """Tuning knobs for the hash-chain matcher.

    Defaults approximate zlib level 6.  ``window_size`` must not exceed
    32768 for DEFLATE compatibility; LZ4 uses 65536.
    """

    window_size: int = 32768
    min_match: int = 3
    max_match: int = 258
    max_chain: int = 48
    lazy: bool = True
    good_match: int = 32  # shorten the chain walk once a match this long is found

    def __post_init__(self) -> None:
        if self.min_match < 3:
            raise ValueError("min_match must be >= 3 (3-byte hash)")
        if self.max_match < self.min_match:
            raise ValueError("max_match must be >= min_match")
        if self.window_size < 1:
            raise ValueError("window_size must be positive")


class TokenStream:
    """Parallel-array token stream.

    ``lengths[i] == 0`` marks a literal whose byte value is ``values[i]``;
    otherwise the token is a copy of ``lengths[i]`` bytes from
    ``values[i]`` bytes back.
    """

    __slots__ = ("lengths", "values", "n_input")

    def __init__(self, lengths: list[int], values: list[int], n_input: int) -> None:
        self.lengths = lengths
        self.values = values
        self.n_input = n_input

    def __len__(self) -> int:
        return len(self.lengths)

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(lengths, values)`` as ``int32`` numpy arrays."""
        return (
            np.asarray(self.lengths, dtype=np.int32),
            np.asarray(self.values, dtype=np.int32),
        )

    def n_literals(self) -> int:
        return sum(1 for l in self.lengths if l == 0)

    def n_matches(self) -> int:
        return len(self.lengths) - self.n_literals()


def _hash_all(data: bytes) -> np.ndarray:
    """3-byte multiplicative hash for every position with i+2 < len."""
    buf = np.frombuffer(data, dtype=np.uint8).astype(np.uint32)
    if buf.size < 3:
        return np.zeros(0, dtype=np.int64)
    h = (buf[:-2] << np.uint32(16)) ^ (buf[1:-1] << np.uint32(8)) ^ buf[2:]
    h = (h * np.uint32(2654435761)) >> np.uint32(32 - _HASH_BITS)
    return h.astype(np.int64)


def _match_length(data: bytes, cand: int, pos: int, limit: int) -> int:
    """Longest l <= limit with data[cand:cand+l] == data[pos:pos+l]."""
    l = 0
    # 16-byte strides first.
    while l + 16 <= limit and data[cand + l : cand + l + 16] == data[pos + l : pos + l + 16]:
        l += 16
    while l < limit and data[cand + l] == data[pos + l]:
        l += 1
    return l


def tokenize(data: bytes, config: MatcherConfig | None = None) -> TokenStream:
    """Factor ``data`` into an LZ77 token stream."""
    with get_profiler().kernel("lz77.match_loop"):
        return _tokenize(data, config)


def _tokenize(data: bytes, config: MatcherConfig | None) -> TokenStream:
    cfg = config or MatcherConfig()
    n = len(data)
    lengths: list[int] = []
    values: list[int] = []
    if n == 0:
        return TokenStream(lengths, values, 0)

    hashes = _hash_all(data)
    head = [-1] * _HASH_SIZE  # most recent position per hash bucket
    prev = [0] * n  # previous position in this bucket's chain

    min_match = cfg.min_match
    max_match = cfg.max_match
    window = cfg.window_size
    max_chain = cfg.max_chain
    good = cfg.good_match
    lazy = cfg.lazy
    n_hash = hashes.shape[0]
    hashes_l = hashes.tolist()  # plain ints: ~3x faster element access

    def longest_match(pos: int) -> tuple[int, int]:
        """Best (length, distance) at ``pos``; (0, 0) if none."""
        best_len = min_match - 1
        best_dist = 0
        limit = min(max_match, n - pos)
        if limit < min_match:
            return 0, 0
        chain = max_chain
        cand = head[hashes_l[pos]]
        low = pos - window
        first_pos = pos
        while cand >= 0 and cand >= low and chain > 0:
            # Quick reject: a longer match must extend past the current best.
            if data[cand + best_len] == data[first_pos + best_len]:
                l = _match_length(data, cand, pos, limit)
                if l > best_len:
                    best_len = l
                    best_dist = pos - cand
                    if l >= limit:
                        break
                    if l >= good:
                        chain >>= 2
            cand = prev[cand]
            chain -= 1
        if best_dist == 0:
            return 0, 0
        return best_len, best_dist

    def insert(pos: int) -> None:
        h = hashes_l[pos]
        prev[pos] = head[h]
        head[h] = pos

    i = 0
    pending: tuple[int, int] | None = None  # deferred (length, dist) at i-1
    while i < n:
        if i < n_hash:
            cur_len, cur_dist = longest_match(i)
            insert(i)
        else:
            cur_len, cur_dist = 0, 0

        if pending is not None:
            pend_len, pend_dist = pending
            if cur_len > pend_len:
                # The deferred position loses; emit its byte as a literal
                # and defer the (strictly longer) current match instead.
                lengths.append(0)
                values.append(data[i - 1])
                pending = (cur_len, cur_dist)
                i += 1
                continue
            # Deferred match wins: emit it; it covers i-1 .. i-2+pend_len.
            # Position i was already inserted above; catch up from i+1.
            lengths.append(pend_len)
            values.append(pend_dist)
            end = i - 1 + pend_len
            j = i + 1
            stop = min(end, n_hash)
            while j < stop:
                insert(j)
                j += 1
            i = end
            pending = None
            continue

        if cur_len >= min_match:
            if lazy and cur_len < max_match and i + 1 < n:
                pending = (cur_len, cur_dist)
                i += 1
                continue
            lengths.append(cur_len)
            values.append(cur_dist)
            end = i + cur_len
            stop = min(end, n_hash)
            i += 1
            while i < stop:
                insert(i)
                i += 1
            i = end
        else:
            lengths.append(0)
            values.append(data[i])
            i += 1

    if pending is not None:
        # Stream ended while deferring: the pending match still applies.
        lengths.append(pending[0])
        values.append(pending[1])
    return TokenStream(lengths, values, n)


def reconstruct(tokens: TokenStream) -> bytes:
    """Inverse of :func:`tokenize` — expand a token stream back to bytes.

    Used by tests as the LZ77-level roundtrip oracle, and by the zstd-lite
    backend's decoder.
    """
    out = bytearray()
    for length, value in zip(tokens.lengths, tokens.values):
        if length == 0:
            out.append(value)
        else:
            start = len(out) - value
            if start < 0:
                raise ValueError("copy distance reaches before start of output")
            for k in range(length):  # may overlap: copy byte-by-byte
                out.append(out[start + k])
    return bytes(out)
