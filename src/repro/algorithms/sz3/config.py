"""SZ3 pipeline configuration."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SZ3Config", "PREDICTORS", "BACKENDS", "ERROR_MODES"]

PREDICTORS = ("lorenzo", "interp", "none")
BACKENDS = ("deflate", "lz4", "zstdlite", "ac", "none")
ERROR_MODES = ("abs", "rel")


@dataclass(frozen=True)
class SZ3Config:
    """Configuration of the SZ3-like pipeline.

    Parameters
    ----------
    error_bound:
        The point-wise bound.  In ``"abs"`` mode it is the absolute
        bound; in ``"rel"`` mode the effective absolute bound is
        ``error_bound * (max - min)`` of the input (SZ's value-range
        relative mode).  The paper's evaluation uses ``1e-4``.
    predictor:
        ``"lorenzo"`` — first-order Lorenzo in every dimension (axis-wise
        first differences in the integer code domain);
        ``"interp"`` — SZ3's level-wise spline interpolation predictor;
        ``"none"`` — raw quantisation codes (useful for ablation).
    backend:
        Lossless stage applied to the encoder output: ``"deflate"``,
        ``"lz4"``, ``"zstdlite"`` (fast LZ + Huffman, SZ3's default
        zstd stand-in), or ``"none"``.
    """

    error_bound: float = 1e-4
    error_mode: str = "abs"
    predictor: str = "lorenzo"
    backend: str = "zstdlite"

    def __post_init__(self) -> None:
        if self.error_bound <= 0:
            raise ValueError("error_bound must be positive")
        if self.error_mode not in ERROR_MODES:
            raise ValueError(f"error_mode must be one of {ERROR_MODES}")
        if self.predictor not in PREDICTORS:
            raise ValueError(f"predictor must be one of {PREDICTORS}")
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}")
