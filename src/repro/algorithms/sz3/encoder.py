"""SZ3 stage 4 — entropy encoder for prediction residuals.

Residuals are zigzag-mapped to unsigned integers and coded with a
canonical Huffman code over a 255-symbol alphabet: values 0..253 code
directly, symbol 254 is an *escape* followed by the raw 64-bit zigzag
value (split into two 32-bit fields).  Smooth scientific data produces
almost exclusively small residuals, so escapes are rare; the escape path
keeps the codec total (any ``int64`` residual round-trips).

Encoding is fully vectorised via
:meth:`repro.util.bitio.BitWriter.write_code_array`.

Payload layout::

    u64 n_values
    u8[255] code lengths (0 = unused symbol)
    u64 payload bit count
    bitstream (zero-padded to a byte)
"""

from __future__ import annotations

import struct

import numpy as np

from repro.algorithms import huffman
from repro.errors import CorruptStreamError
from repro.util.bitio import BitReader, BitWriter

__all__ = ["encode_residuals", "decode_residuals"]

_ESCAPE = 254
_ALPHABET = 255
_MAX_BITS = 15


def _zigzag(values: np.ndarray) -> np.ndarray:
    v = values.astype(np.int64)
    return ((v << np.int64(1)) ^ (v >> np.int64(63))).astype(np.uint64)


def _unzigzag(z: np.ndarray) -> np.ndarray:
    z = z.astype(np.uint64)
    return ((z >> np.uint64(1)) ^ (np.uint64(0) - (z & np.uint64(1)))).astype(np.int64)


def encode_residuals(residuals: np.ndarray) -> bytes:
    """Entropy-code an ``int64`` residual array."""
    flat = residuals.reshape(-1)
    n = flat.size
    z = _zigzag(flat)
    is_escape = z >= _ESCAPE
    syms = np.where(is_escape, np.uint64(_ESCAPE), z).astype(np.int64)

    freq = np.bincount(syms, minlength=_ALPHABET)
    lengths = huffman.code_lengths(freq, _MAX_BITS)
    codes = huffman.lsb_codes(lengths)

    # Field matrix: symbol code, escape low 32 bits, escape high 32 bits.
    fields_codes = np.zeros((n, 3), dtype=np.uint32)
    fields_bits = np.zeros((n, 3), dtype=np.int64)
    fields_codes[:, 0] = codes[syms]
    fields_bits[:, 0] = lengths[syms]
    if is_escape.any():
        esc = z[is_escape]
        fields_codes[is_escape, 1] = (esc & np.uint64(0xFFFFFFFF)).astype(np.uint32)
        fields_bits[is_escape, 1] = 32
        fields_codes[is_escape, 2] = (esc >> np.uint64(32)).astype(np.uint32)
        fields_bits[is_escape, 2] = 32

    writer = BitWriter()
    writer.write_code_array(fields_codes.reshape(-1), fields_bits.reshape(-1))
    bitstream = writer.getvalue()
    nbits = writer.bit_length

    out = bytearray()
    out += struct.pack("<Q", n)
    out += lengths.astype(np.uint8).tobytes()
    out += struct.pack("<Q", nbits)
    out += bitstream
    return bytes(out)


def decode_residuals(payload: bytes) -> np.ndarray:
    """Inverse of :func:`encode_residuals`; returns a flat ``int64`` array."""
    if len(payload) < 8 + _ALPHABET + 8:
        raise CorruptStreamError("SZ3 entropy payload truncated")
    (n,) = struct.unpack_from("<Q", payload, 0)
    lengths = np.frombuffer(payload, dtype=np.uint8, count=_ALPHABET, offset=8)
    (nbits,) = struct.unpack_from("<Q", payload, 8 + _ALPHABET)
    bitstream = payload[8 + _ALPHABET + 8 :]
    if len(bitstream) * 8 < nbits:
        raise CorruptStreamError("SZ3 bitstream shorter than declared")

    if n == 0:
        return np.zeros(0, dtype=np.int64)

    decoder = huffman.HuffmanDecoder(lengths.astype(np.int32))
    reader = BitReader(bitstream)
    out = np.empty(n, dtype=np.uint64)
    table = decoder.table
    max_bits = decoder.max_bits
    peek = reader.peek_bits
    skip = reader.skip_bits
    read = reader.read_bits
    for i in range(n):
        entry = int(table[peek(max_bits)])
        if entry == 0:
            raise CorruptStreamError("invalid Huffman code in SZ3 stream")
        skip(entry >> 9)
        sym = entry & 0x1FF
        if sym == _ESCAPE:
            lo = read(32)
            hi = read(32)
            out[i] = (hi << 32) | lo
        else:
            out[i] = sym
    return _unzigzag(out)
