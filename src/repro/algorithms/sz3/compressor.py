"""SZ3 stage orchestration: the full compress/decompress pipelines.

Stream layout (little-endian)::

    magic   b"SZ3R"
    u8      format version (1)
    u8      dtype code (0 = float32, 1 = float64)
    u8      ndim
    u8      predictor id
    u8      backend id
    u64[nd] shape
    f64     absolute error bound
    u64     backend blob length
    bytes   backend blob (lossless-compressed entropy payload)

:class:`SZ3Compressor` additionally exposes each stage separately and
records per-stage byte counts, which :mod:`repro.core.sz3_hybrid` uses
to charge the right simulated hardware for the right stage.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.sz3 import encoder, lossless, predictor, quantizer
from repro.obs.profile import get_profiler
from repro.algorithms.sz3.config import SZ3Config
from repro.algorithms.sz3.preprocessor import DTYPE_FROM_CODE, preprocess
from repro.errors import CorruptStreamError

__all__ = ["SZ3Compressor", "StageSizes", "sz3_compress", "sz3_decompress"]

_MAGIC = b"SZ3R"
_VERSION = 1
_PREDICTOR_IDS = {"lorenzo": 0, "interp": 1, "none": 2}
_PREDICTOR_NAMES = {v: k for k, v in _PREDICTOR_IDS.items()}


@dataclass
class StageSizes:
    """Byte counts flowing between pipeline stages (one compression)."""

    input_bytes: int = 0
    entropy_payload_bytes: int = 0  # encoder output = lossless-stage input
    backend_blob_bytes: int = 0  # lossless-stage output
    stream_bytes: int = 0  # final stream including header


@dataclass
class SZ3Compressor:
    """Stage-by-stage SZ3 pipeline bound to one configuration."""

    config: SZ3Config = field(default_factory=SZ3Config)
    last_stage_sizes: StageSizes = field(default_factory=StageSizes)

    # -- individual stages --------------------------------------------------

    def entropy_stage(self, array: np.ndarray) -> tuple[bytes, bytes]:
        """Run preprocess → predict → quantise → encode.

        Returns ``(header, entropy_payload)`` — everything up to (and
        excluding) the lossless backend stage.
        """
        pre = preprocess(array, self.config)
        codes = quantizer.quantize(pre.data, pre.abs_error_bound)
        residual = predictor.predict_residual(codes, self.config.predictor)
        payload = encoder.encode_residuals(residual)

        header = bytearray()
        header += _MAGIC
        header.append(_VERSION)
        header.append(pre.dtype_code)
        header.append(len(pre.shape))
        header.append(_PREDICTOR_IDS[self.config.predictor])
        header.append(lossless.BACKEND_IDS[self.config.backend])
        for dim in pre.shape:
            header += struct.pack("<Q", dim)
        header += struct.pack("<d", pre.abs_error_bound)
        return bytes(header), payload

    def lossless_stage(self, payload: bytes) -> bytes:
        """Apply the configured lossless backend to the entropy payload."""
        return lossless.backend_compress(payload, self.config.backend)

    def assemble(self, header: bytes, blob: bytes) -> bytes:
        """Concatenate header + blob length + blob into the final stream."""
        return header + struct.pack("<Q", len(blob)) + blob

    # -- one-shot APIs ------------------------------------------------------

    def compress(self, array: np.ndarray) -> bytes:
        """Full pipeline; also records :attr:`last_stage_sizes`."""
        with get_profiler().kernel("sz3.compress"):
            header, payload = self.entropy_stage(array)
            blob = self.lossless_stage(payload)
            stream = self.assemble(header, blob)
        self.last_stage_sizes = StageSizes(
            input_bytes=int(np.asarray(array).nbytes),
            entropy_payload_bytes=len(payload),
            backend_blob_bytes=len(blob),
            stream_bytes=len(stream),
        )
        return stream

    @staticmethod
    def decompress(stream: bytes) -> np.ndarray:
        """Decode a stream produced by any :class:`SZ3Compressor`."""
        array, _sizes = SZ3Compressor.decompress_stages(stream)
        return array

    @staticmethod
    def decompress_stages(stream: bytes) -> tuple[np.ndarray, StageSizes]:
        """Decode a stream, reporting per-stage byte counts.

        The sizes let callers (PEDAL's hybrid design) attribute the
        lossless-stage work separately from the entropy pipeline.
        """
        if len(stream) < 9 or stream[:4] != _MAGIC:
            raise CorruptStreamError("not an SZ3R stream")
        version = stream[4]
        if version != _VERSION:
            raise CorruptStreamError(f"unsupported SZ3R version {version}")
        dtype_code = stream[5]
        ndim = stream[6]
        predictor_id = stream[7]
        backend_id = stream[8]
        if dtype_code not in DTYPE_FROM_CODE:
            raise CorruptStreamError(f"unknown dtype code {dtype_code}")
        if predictor_id not in _PREDICTOR_NAMES:
            raise CorruptStreamError(f"unknown predictor id {predictor_id}")
        if backend_id not in lossless.BACKEND_NAMES:
            raise CorruptStreamError(f"unknown backend id {backend_id}")
        pos = 9
        if len(stream) < pos + 8 * ndim + 8 + 8:
            raise CorruptStreamError("SZ3R header truncated")
        shape = tuple(
            struct.unpack_from("<Q", stream, pos + 8 * k)[0] for k in range(ndim)
        )
        pos += 8 * ndim
        (eb,) = struct.unpack_from("<d", stream, pos)
        pos += 8
        (blob_len,) = struct.unpack_from("<Q", stream, pos)
        pos += 8
        if len(stream) < pos + blob_len:
            raise CorruptStreamError("SZ3R backend blob truncated")
        blob = stream[pos : pos + blob_len]

        payload = lossless.backend_decompress(blob, lossless.BACKEND_NAMES[backend_id])
        residual = encoder.decode_residuals(payload)
        n = int(np.prod(shape, dtype=np.int64)) if shape else 0
        if residual.size != n:
            raise CorruptStreamError(
                f"decoded {residual.size} residuals for shape {shape} ({n} expected)"
            )
        residual = residual.reshape(shape)
        codes = predictor.reconstruct_codes(residual, _PREDICTOR_NAMES[predictor_id])
        array = quantizer.dequantize(codes, eb, DTYPE_FROM_CODE[dtype_code])
        sizes = StageSizes(
            input_bytes=int(array.nbytes),
            entropy_payload_bytes=len(payload),
            backend_blob_bytes=len(blob),
            stream_bytes=len(stream),
        )
        return array, sizes


def sz3_compress(array: np.ndarray, config: SZ3Config | None = None) -> bytes:
    """One-shot SZ3 compression of a float ndarray."""
    return SZ3Compressor(config or SZ3Config()).compress(array)


def sz3_decompress(stream: bytes) -> np.ndarray:
    """One-shot SZ3 decompression back to an ndarray."""
    return SZ3Compressor.decompress(stream)
