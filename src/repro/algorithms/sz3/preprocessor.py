"""SZ3 stage 1 — preprocessor.

Validates and normalises the input array and resolves the effective
absolute error bound (value-range scaling for relative mode), mirroring
SZ3's preprocessing stage that "normalizes and conditions the data".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.sz3.config import SZ3Config
from repro.errors import UnsupportedDataError

__all__ = ["Preprocessed", "preprocess", "DTYPE_CODES", "DTYPE_FROM_CODE"]

DTYPE_CODES = {np.dtype(np.float32): 0, np.dtype(np.float64): 1}
DTYPE_FROM_CODE = {v: k for k, v in DTYPE_CODES.items()}

_MAX_NDIM = 4
# Quantisation codes are int64; leave generous headroom for the zigzag
# doubling and Lorenzo differencing (each difference at most doubles the
# magnitude per axis).
_MAX_ABS_CODE = 1 << 56


@dataclass(frozen=True)
class Preprocessed:
    """Output of the preprocessing stage."""

    data: np.ndarray  # C-contiguous float array, original shape
    shape: tuple[int, ...]
    dtype_code: int
    abs_error_bound: float  # resolved absolute bound


def preprocess(array: np.ndarray, config: SZ3Config) -> Preprocessed:
    """Validate ``array`` and resolve the effective absolute error bound.

    Raises
    ------
    UnsupportedDataError
        For non-float dtypes, >4-D arrays, non-finite values, or an
        error bound so small that quantisation codes would overflow.
    """
    array = np.asarray(array)
    if array.dtype not in DTYPE_CODES:
        raise UnsupportedDataError(
            f"SZ3 supports float32/float64 arrays, got dtype {array.dtype}"
        )
    if array.ndim == 0 or array.ndim > _MAX_NDIM:
        raise UnsupportedDataError(
            f"SZ3 supports 1..{_MAX_NDIM}-D arrays, got {array.ndim}-D"
        )
    if array.size and not np.isfinite(array).all():
        raise UnsupportedDataError("SZ3 input must be finite (no NaN/Inf)")
    array = np.ascontiguousarray(array)

    eb = config.error_bound
    if config.error_mode == "rel":
        if array.size:
            value_range = float(array.max() - array.min())
        else:
            value_range = 0.0
        eb = eb * value_range if value_range > 0 else config.error_bound

    if array.size:
        max_code = float(np.abs(array).max()) / (2.0 * eb)
        if max_code > _MAX_ABS_CODE:
            raise UnsupportedDataError(
                f"error bound {eb:g} too small for data magnitude "
                f"{float(np.abs(array).max()):g}: quantisation would overflow"
            )

    return Preprocessed(
        data=array,
        shape=tuple(array.shape),
        dtype_code=DTYPE_CODES[array.dtype],
        abs_error_bound=eb,
    )
