"""SZ3-like modular error-bounded lossy compressor for scientific data.

Mirrors the SZ3 pipeline the paper describes (Fig. 4)::

    preprocessor -> predictor -> quantizer -> encoder -> lossless backend

with each stage a separate module so stages can be swapped — exactly the
property PEDAL exploits when it reroutes only the *lossless backend*
stage to the DPU's C-Engine.

Equivalence note
----------------
Classic SZ predicts each sample from already-*reconstructed* neighbours
and then quantises the prediction residual.  For any predictor with
integer coefficients (Lorenzo of any order, and the level-wise integer
interpolation used here), that sequential formulation is *algebraically
identical* to: quantise every sample onto the ``2·eb`` grid first, then
predict in the integer code domain.  (Proof sketch: by induction every
reconstructed value is a grid multiple, so the residual rounding
telescopes; see ``docs`` in :mod:`repro.algorithms.sz3.quantizer`.)
The integer-domain form has no loop-carried dependency and is fully
vectorised with numpy, while producing bit-identical quantisation codes
to the sequential algorithm.

Public API
----------
:func:`sz3_compress` / :func:`sz3_decompress` — one-shot ndarray codec.
:class:`SZ3Config` — error bound / predictor / backend selection.
:class:`SZ3Compressor` — stage-by-stage object API (used by PEDAL's
hybrid design to time and reroute individual stages).
"""

from repro.algorithms.sz3.compressor import (
    SZ3Compressor,
    sz3_compress,
    sz3_decompress,
)
from repro.algorithms.sz3.config import SZ3Config

__all__ = ["SZ3Compressor", "SZ3Config", "sz3_compress", "sz3_decompress"]
