"""SZ3 stage 2 — predictors, in the integer code domain.

Per the equivalence documented in :mod:`repro.algorithms.sz3.quantizer`,
prediction operates on quantisation codes.  Both predictors are exact
integer transforms (bijective on ``int64`` arrays), so the predictor
stage itself is lossless; all information loss lives in the quantizer.

``lorenzo``
    First-order Lorenzo in every array dimension = successive first
    differences along each axis.  For smooth fields the residuals
    concentrate near zero.  Inverse: cumulative sums in reverse axis
    order.

``interp``
    SZ3's level-wise interpolation, applied to the C-order flattened
    sequence: coarse anchor points are delta-coded, then each refinement
    level predicts the midpoints of the previous level by the integer
    mean of their two anchors.  Dependencies exist only *between* levels,
    so each level is one vectorised operation.
"""

from __future__ import annotations

import numpy as np

from repro.obs.profile import get_profiler
from repro.util.kernels import scalar_kernels

__all__ = ["predict_residual", "reconstruct_codes"]


def _lorenzo_residual(codes: np.ndarray) -> np.ndarray:
    res = codes
    for axis in range(codes.ndim):
        res = np.diff(res, axis=axis, prepend=np.int64(0))
    return res


def _lorenzo_reconstruct(res: np.ndarray) -> np.ndarray:
    codes = res
    for axis in reversed(range(res.ndim)):
        codes = np.cumsum(codes, axis=axis, dtype=np.int64)
    return codes


def _lorenzo_residual_scalar(codes: np.ndarray) -> np.ndarray:
    """Per-element reference for :func:`_lorenzo_residual` — the classic
    sequential Lorenzo sweep, one sample at a time.  Integer arithmetic
    is exact, so the result matches the vectorized successive-diff
    formulation bit for bit in any dimension count."""
    res = np.asarray(codes, dtype=np.int64)
    for axis in range(res.ndim):
        out = np.empty_like(res)
        length = res.shape[axis]
        moved = np.moveaxis(res, axis, 0)
        out_moved = np.moveaxis(out, axis, 0)
        for k in range(length - 1, -1, -1):
            for idx in np.ndindex(moved.shape[1:]):
                prev = moved[(k - 1,) + idx] if k > 0 else np.int64(0)
                out_moved[(k,) + idx] = moved[(k,) + idx] - prev
        res = out
    return res


def _lorenzo_reconstruct_scalar(res: np.ndarray) -> np.ndarray:
    """Per-element reference for :func:`_lorenzo_reconstruct`."""
    codes = np.asarray(res, dtype=np.int64)
    for axis in reversed(range(codes.ndim)):
        out = np.empty_like(codes)
        length = codes.shape[axis]
        moved = np.moveaxis(codes, axis, 0)
        out_moved = np.moveaxis(out, axis, 0)
        for k in range(length):
            for idx in np.ndindex(moved.shape[1:]):
                prev = out_moved[(k - 1,) + idx] if k > 0 else np.int64(0)
                out_moved[(k,) + idx] = prev + moved[(k,) + idx]
        codes = out
    return codes


def _interp_levels(n: int) -> list[int]:
    """Refinement strides: ..., 8, 4, 2, 1 with the top stride < n."""
    if n < 2:
        return []
    top = 1 << (max(n - 1, 1).bit_length() - 1)
    strides = []
    s = top
    while s >= 1:
        strides.append(s)
        s >>= 1
    return strides


def _interp_residual(codes: np.ndarray) -> np.ndarray:
    flat = codes.reshape(-1)
    n = flat.size
    res = np.empty_like(flat)
    strides = _interp_levels(n)
    if not strides:
        return codes.copy()
    top = strides[0]
    # Anchors live on the 2*top grid (so level `top` can refine their
    # midpoints); delta-code the anchor sequence.
    anchors = flat[:: 2 * top]
    res[:: 2 * top] = np.diff(anchors, prepend=np.int64(0))
    for s in strides:
        # Targets are odd multiples of s — midpoints of the 2s grid.
        targets = np.arange(s, n, 2 * s)
        if targets.size == 0:
            continue
        left = flat[targets - s]
        right_idx = targets + s
        # Final midpoint may lack a right anchor: predict from left only.
        right = np.where(right_idx < n, flat[np.minimum(right_idx, n - 1)], left)
        pred = (left + right) >> 1  # floor integer mean
        res[targets] = flat[targets] - pred
    return res.reshape(codes.shape)


def _interp_reconstruct(res: np.ndarray) -> np.ndarray:
    flat_res = res.reshape(-1)
    n = flat_res.size
    strides = _interp_levels(n)
    if not strides:
        return res.copy()
    out = np.empty_like(flat_res)
    top = strides[0]
    out[:: 2 * top] = np.cumsum(flat_res[:: 2 * top], dtype=np.int64)
    for s in strides:
        targets = np.arange(s, n, 2 * s)
        if targets.size == 0:
            continue
        left = out[targets - s]
        right_idx = targets + s
        right = np.where(right_idx < n, out[np.minimum(right_idx, n - 1)], left)
        pred = (left + right) >> 1
        out[targets] = pred + flat_res[targets]
    return out.reshape(res.shape)


def predict_residual(codes: np.ndarray, kind: str) -> np.ndarray:
    """Transform quantisation codes into prediction residuals.

    The Lorenzo predictor dispatches between the whole-array numpy
    kernel and the sequential per-element reference
    (``REPRO_SCALAR_KERNELS`` / ``force_kernel_mode``); ``interp``
    only has the level-wise vectorized form.
    """
    with get_profiler().kernel(f"{kind}.predict"):
        if kind == "lorenzo":
            if scalar_kernels():
                return _lorenzo_residual_scalar(codes)
            return _lorenzo_residual(codes)
        if kind == "interp":
            return _interp_residual(codes)
        if kind == "none":
            return codes.copy()
        raise ValueError(f"unknown predictor {kind!r}")


def reconstruct_codes(residual: np.ndarray, kind: str) -> np.ndarray:
    """Inverse of :func:`predict_residual`."""
    with get_profiler().kernel(f"{kind}.reconstruct"):
        if kind == "lorenzo":
            if scalar_kernels():
                return _lorenzo_reconstruct_scalar(residual)
            return _lorenzo_reconstruct(residual)
        if kind == "interp":
            return _interp_reconstruct(residual)
        if kind == "none":
            return residual.copy()
        raise ValueError(f"unknown predictor {kind!r}")
