r"""SZ3 stage 3 — linear error-bounded quantizer.

Maps each sample onto the uniform grid of pitch ``2*eb``::

    q = round(x / (2*eb))          reconstruction:  x' = q * 2*eb

which guarantees ``|x - x'| <= eb`` point-wise.

Equivalence to classic predict-then-quantize SZ
-----------------------------------------------
Classic SZ computes, sample by sample,

.. math::

    q_i = \mathrm{round}\!\big((x_i - p_i) / 2eb\big), \qquad
    \hat x_i = p_i + 2eb\, q_i

where the prediction :math:`p_i` is an integer-coefficient combination
of already-reconstructed neighbours :math:`\hat x_j`.  By induction
every :math:`\hat x_j` is a multiple of :math:`2eb`, hence
:math:`p_i = 2eb\,P_i` with integer :math:`P_i`, and

.. math::

    q_i = \mathrm{round}(x_i/2eb - P_i) = \mathrm{round}(x_i/2eb) - P_i.

So the *transmitted* residual code equals (grid code − integer
prediction), and reconstruction is exactly :math:`2eb \cdot
\mathrm{round}(x_i/2eb)` independent of the predictor.  This module
implements the grid map; :mod:`repro.algorithms.sz3.predictor`
implements :math:`P` in the integer domain.  The resulting codes are
bit-identical to the sequential algorithm while being fully
vectorisable.
"""

from __future__ import annotations

import numpy as np

from repro.obs.profile import get_profiler
from repro.util.kernels import scalar_kernels

__all__ = ["quantize", "dequantize"]


def quantize(data: np.ndarray, abs_error_bound: float) -> np.ndarray:
    """Quantise ``data`` onto the ``2*eb`` grid; returns ``int64`` codes.

    ``np.rint`` rounds half-to-even; any consistent rounding satisfies
    the bound since ties sit exactly at distance ``eb``.
    """
    with get_profiler().kernel("lorenzo.quantize"):
        pitch = 2.0 * abs_error_bound
        if scalar_kernels():
            return _quantize_scalar(data, pitch)
        return np.rint(data.astype(np.float64) / pitch).astype(np.int64)


def dequantize(
    codes: np.ndarray, abs_error_bound: float, dtype: np.dtype
) -> np.ndarray:
    """Reconstruct grid values from ``int64`` codes."""
    with get_profiler().kernel("lorenzo.dequantize"):
        pitch = 2.0 * abs_error_bound
        if scalar_kernels():
            return _dequantize_scalar(codes, pitch, dtype)
        return (codes.astype(np.float64) * pitch).astype(dtype)


def _quantize_scalar(data: np.ndarray, pitch: float) -> np.ndarray:
    """Per-element reference for :func:`quantize` (classic sequential SZ
    shape).  Uses numpy *scalar* ops so rounding and the NaN/Inf →
    ``int64`` cast behave exactly like the whole-array kernel."""
    flat = np.asarray(data).reshape(-1)
    out = np.empty(flat.size, dtype=np.int64)
    for i in range(flat.size):
        out[i] = np.rint(np.float64(flat[i]) / pitch).astype(np.int64)
    return out.reshape(np.asarray(data).shape)


def _dequantize_scalar(
    codes: np.ndarray, pitch: float, dtype: np.dtype
) -> np.ndarray:
    """Per-element reference for :func:`dequantize`."""
    flat = np.asarray(codes).reshape(-1)
    out = np.empty(flat.size, dtype=dtype)
    for i in range(flat.size):
        out[i] = (np.float64(flat[i]) * pitch).astype(dtype)
    return out.reshape(np.asarray(codes).shape)
