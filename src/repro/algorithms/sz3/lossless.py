"""SZ3 stage 5 — pluggable lossless backend.

SZ3 finishes by losslessly compressing the entropy-coded payload (the
real SZ3 defaults to zstd).  PEDAL's lossy optimisation (paper §III-C.2)
reroutes exactly this stage to the C-Engine; keeping it behind one
two-function interface is what makes that rerouting a one-line change in
:mod:`repro.core.sz3_hybrid`.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import CorruptStreamError

__all__ = ["backend_compress", "backend_decompress", "BACKEND_IDS", "BACKEND_NAMES"]

BACKEND_IDS = {"none": 0, "deflate": 1, "lz4": 2, "zstdlite": 3, "ac": 4}
BACKEND_NAMES = {v: k for k, v in BACKEND_IDS.items()}


def _get_codec(name: str) -> tuple[Callable[[bytes], bytes], Callable[[bytes], bytes]]:
    if name == "none":
        return (lambda b: b), (lambda b: b)
    if name == "deflate":
        from repro.algorithms.deflate import deflate_compress, deflate_decompress

        return deflate_compress, deflate_decompress
    if name == "lz4":
        from repro.algorithms.lz4 import lz4_compress, lz4_decompress

        return lz4_compress, lz4_decompress
    if name == "zstdlite":
        from repro.algorithms.zstdlite import zstdlite_compress, zstdlite_decompress

        return zstdlite_compress, zstdlite_decompress
    if name == "ac":
        from repro.algorithms.ac import ac_compress, ac_decompress

        return ac_compress, ac_decompress
    raise CorruptStreamError(f"unknown SZ3 lossless backend {name!r}")


def backend_compress(payload: bytes, name: str) -> bytes:
    """Compress the entropy-coded payload with the named backend."""
    compress, _ = _get_codec(name)
    return compress(payload)


def backend_decompress(blob: bytes, name: str) -> bytes:
    """Decompress a backend blob produced by :func:`backend_compress`."""
    _, decompress = _get_codec(name)
    return decompress(blob)
