"""Host CPU and PCIe link descriptions.

The Thor cluster's hosts are dual-socket Xeon-class servers; a single
server core runs zlib-class codecs roughly 2.5-3x faster than a
BlueField-2 A72 core (typical published single-core gaps for this
generation).  PCIe Gen4 x16 carries ~32 GB/s raw, ~25 GB/s effective
after protocol overhead, with a few microseconds of DMA setup per
descriptor.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HostSpec", "PcieSpec", "HOST_XEON", "PCIE_GEN4_X16"]


@dataclass(frozen=True)
class HostSpec:
    """A host server attached to a DPU."""

    name: str
    n_cores: int
    # Per-core codec throughput relative to the BF2 A72 baseline.
    perf_scale: float


@dataclass(frozen=True)
class PcieSpec:
    """The host <-> DPU PCIe link."""

    name: str
    bandwidth: float  # effective bytes/second
    dma_setup_s: float  # per-descriptor setup cost

    def transfer_time(self, nbytes: float) -> float:
        """One DMA crossing of ``nbytes``."""
        return self.dma_setup_s + nbytes / self.bandwidth


HOST_XEON = HostSpec(name="Xeon-class host", n_cores=32, perf_scale=2.8)

PCIE_GEN4_X16 = PcieSpec(
    name="PCIe Gen4 x16",
    bandwidth=25e9,
    dma_setup_s=5e-6,
)
