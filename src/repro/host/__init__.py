"""The host-offload deployment scenario (paper §VI).

The paper's discussion asks the MPI community to "explore alternative
deployment scenarios, such as MPI on the host while offloading data
compression to the DPU", stressing that "it is crucial to assess the
overhead associated with data movement between the host and DPU" over
PCIe.  This package models exactly that evaluation:

* :mod:`repro.host.specs` — an x86 host CPU and the PCIe Gen4 x16 link
  that attaches the BlueField card;
* :mod:`repro.host.model` — host-side execution (host cores run the
  same codecs, faster per core than the DPU's ARM cores);
* :mod:`repro.host.offload` — the three compression placements for a
  host-resident MPI rank, with full simulated-time accounting:

  - ``HOST_ONLY``: compress on host cores, send from the host NIC path;
  - ``DPU_ROUNDTRIP``: DMA the data to the DPU, compress there
    (C-Engine when capable), DMA the compressed bytes back, send from
    the host — data crosses PCIe twice;
  - ``DPU_INLINE``: DMA the data to the DPU, compress there, and inject
    directly into the fabric from the DPU's NIC — one PCIe crossing,
    the design the paper hints at for future co-designs.

The crossover between these placements is measured by
``benchmarks/test_ablation_host_offload.py``.
"""

from repro.host.model import HostNode
from repro.host.offload import HostOffloadEngine, OffloadPath
from repro.host.specs import HOST_XEON, PCIE_GEN4_X16, HostSpec, PcieSpec

__all__ = [
    "HOST_XEON",
    "HostNode",
    "HostOffloadEngine",
    "HostSpec",
    "OffloadPath",
    "PCIE_GEN4_X16",
    "PcieSpec",
]
