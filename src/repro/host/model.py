"""Host-side execution model.

The host runs the same codec implementations as the DPU SoC, scaled by
its per-core performance factor; host cores are a simulated resource
pool so concurrent streams contend realistically.
"""

from __future__ import annotations

from typing import Generator

from repro.dpu.calibration import CAL_BF2
from repro.dpu.specs import Algo, Direction
from repro.host.specs import HostSpec
from repro.sim import Environment, Resource

__all__ = ["HostNode"]


class HostNode:
    """One host server (the CPU side of a host+DPU pair)."""

    def __init__(self, env: Environment, spec: HostSpec) -> None:
        self.env = env
        self.spec = spec
        self.cores = Resource(env, capacity=spec.n_cores)
        self.busy_seconds = 0.0

    def codec_time(self, algo: Algo, direction: Direction, nbytes: float) -> float:
        """Single-core codec time on the host.

        Host speeds derive from the same BF2 calibration baseline scaled
        by the host's per-core factor — one consistent speed model
        across the whole machine pair.
        """
        return CAL_BF2.soc_time(algo, direction, nbytes) / self.spec.perf_scale

    def run(self, seconds: float) -> Generator:
        """Occupy one host core for ``seconds``."""
        req = self.cores.request()
        yield req
        try:
            yield self.env.timeout(seconds)
            self.busy_seconds += seconds
        finally:
            self.cores.release(req)

    def run_codec(
        self, algo: Algo, direction: Direction, nbytes: float
    ) -> Generator:
        seconds = self.codec_time(algo, direction, nbytes)
        yield from self.run(seconds)
        return seconds
