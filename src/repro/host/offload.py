"""Compression placement for host-resident MPI ranks (paper §VI).

:class:`HostOffloadEngine` evaluates one compress(+send-side) pipeline
under three placements, doing the real codec work once and charging the
simulated host/PCIe/DPU hardware per placement.  The decompress path
mirrors it.  Breakdown phases: ``pcie_h2d`` / ``pcie_d2h`` (link
crossings), ``compression`` / ``decompression`` (codec), plus PEDAL's
usual phases when the DPU side is engaged.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Generator

from repro.core.api import PedalContext
from repro.core.codecs import CodecConfig, real_compress, real_decompress
from repro.core.designs import CompressionDesign, design as lookup_design
from repro.core.header import HEADER_SIZE, PedalHeader
from repro.core.registry import cengine_core_algo, resolve
from repro.dpu.device import BlueFieldDPU
from repro.dpu.specs import Algo, Direction
from repro.host.model import HostNode
from repro.host.specs import PcieSpec
from repro.sim import TimeBreakdown

__all__ = ["OffloadPath", "OffloadResult", "HostOffloadEngine"]

PHASE_PCIE_H2D = "pcie_h2d"
PHASE_PCIE_D2H = "pcie_d2h"
PHASE_CODEC = "compression"
PHASE_DECODEC = "decompression"
# zlib checksum/header work on host cores — same phase name the DPU-side
# paths use (repro.core.api/baseline), so breakdowns compare like for
# like and the charge is visibly symmetric across directions.
PHASE_HEADER = "header_trailer"


class OffloadPath(str, Enum):
    """Where a host rank's compression executes."""

    HOST_ONLY = "host_only"
    DPU_ROUNDTRIP = "dpu_roundtrip"
    DPU_INLINE = "dpu_inline"


@dataclass
class OffloadResult:
    """One offloaded compression with its accounting."""

    message: bytes
    path: OffloadPath
    design: CompressionDesign
    original_bytes: int
    compressed_bytes: int
    sim_compressed_bytes: float
    breakdown: TimeBreakdown
    # True when the compressed bytes end up DPU-side (inline path) —
    # the send must then go out of the DPU NIC.
    data_on_dpu: bool

    @property
    def sim_seconds(self) -> float:
        return self.breakdown.total()


class HostOffloadEngine:
    """A host + DPU pair evaluating compression placements."""

    def __init__(
        self,
        host: HostNode,
        dpu: BlueFieldDPU,
        pcie: PcieSpec,
        codecs: CodecConfig | None = None,
    ) -> None:
        self.host = host
        self.dpu = dpu
        self.pcie = pcie
        self.codecs = codecs or CodecConfig()
        self.pedal = PedalContext(dpu)
        self._pedal_ready = False

    def init(self) -> Generator:
        """Bring up the DPU-side PEDAL context (once)."""
        if not self._pedal_ready:
            yield from self.pedal.init()
            self._pedal_ready = True

    def _pcie_crossing(self, nbytes: float, phase: str, breakdown: TimeBreakdown):
        seconds = self.pcie.transfer_time(nbytes)
        breakdown.add(phase, seconds)
        yield self.host.env.timeout(seconds)

    def compress(
        self,
        data: Any,
        design_spec: "str | CompressionDesign",
        path: OffloadPath,
        sim_bytes: float | None = None,
    ) -> Generator:
        """Compress ``data`` under ``path``; returns :class:`OffloadResult`."""
        dsg = lookup_design(design_spec)
        real = real_compress(dsg, data, self.codecs)
        sim_in = float(real.original_bytes if sim_bytes is None else sim_bytes)
        scale = sim_in / real.original_bytes if real.original_bytes else 1.0
        message = PedalHeader.for_algo(dsg.algo).encode() + real.payload
        sim_out = len(message) * scale
        breakdown = TimeBreakdown()

        if path is OffloadPath.HOST_ONLY:
            seconds = self._host_codec_seconds(dsg, Direction.COMPRESS, sim_in)
            yield from self.host.run(seconds)
            breakdown.add(PHASE_CODEC, seconds)
            yield from self._host_checksum(dsg, sim_in, breakdown)
            return OffloadResult(
                message, path, dsg, real.original_bytes, len(message),
                sim_out, breakdown, data_on_dpu=False,
            )

        # DPU paths: ship the raw data down over PCIe...
        yield from self._pcie_crossing(sim_in, PHASE_PCIE_H2D, breakdown)
        # ...compress with PEDAL on the DPU (engine or SoC fallback)...
        comp = yield from self.pedal.compress(data, dsg, sim_in)
        breakdown.merge(comp.breakdown)
        if path is OffloadPath.DPU_ROUNDTRIP:
            # ...and bring the (smaller) compressed bytes back up.
            yield from self._pcie_crossing(sim_out, PHASE_PCIE_D2H, breakdown)
            return OffloadResult(
                message, path, dsg, real.original_bytes, len(message),
                sim_out, breakdown, data_on_dpu=False,
            )
        return OffloadResult(
            message, path, dsg, real.original_bytes, len(message),
            sim_out, breakdown, data_on_dpu=True,
        )

    def decompress(
        self,
        message: bytes,
        path: OffloadPath,
        sim_bytes: float | None = None,
    ) -> Generator:
        """Mirror path for the receive side; returns (data, breakdown)."""
        header = PedalHeader.decode(message)
        breakdown = TimeBreakdown()
        if not header.is_compressed:
            return message[HEADER_SIZE:], breakdown
        algo = header.algo
        assert algo is not None
        data, _stage = real_decompress(algo, message[HEADER_SIZE:])
        actual_out = data.nbytes if hasattr(data, "nbytes") else len(data)
        sim_out = float(actual_out if sim_bytes is None else sim_bytes)
        scale = sim_out / actual_out if actual_out else 1.0
        sim_in = len(message) * scale

        if path is OffloadPath.HOST_ONLY:
            dsg = CompressionDesign(algo, lookup_design("SoC_DEFLATE").placement)
            seconds = self._host_codec_seconds(dsg, Direction.DECOMPRESS, sim_out)
            yield from self.host.run(seconds)
            breakdown.add(PHASE_DECODEC, seconds)
            # Mirror of the compress side: zlib's adler32 verification
            # is charged on the decompress direction too (billed on the
            # uncompressed bytes, the same convention both ways), so
            # the host-vs-DPU crossover stays symmetric.
            yield from self._host_checksum(dsg, sim_out, breakdown)
            return data, breakdown

        if path is OffloadPath.DPU_ROUNDTRIP:
            # Compressed bytes down, decompressed data back up.
            yield from self._pcie_crossing(sim_in, PHASE_PCIE_H2D, breakdown)
        # (Inline: the message arrived at the DPU NIC; already DPU-side.)
        dec = yield from self.pedal.decompress(message, sim_bytes=sim_out)
        breakdown.merge(dec.breakdown)
        yield from self._pcie_crossing(sim_out, PHASE_PCIE_D2H, breakdown)
        return data, breakdown

    def _host_codec_seconds(
        self, dsg: CompressionDesign, direction: Direction, sim_bytes: float
    ) -> float:
        """Host-core time for the design's codec stages (checksum work
        is charged separately by :meth:`_host_checksum` so it lands in
        the ``header_trailer`` phase on both directions)."""
        if dsg.algo is Algo.SZ3:
            return self.host.codec_time(Algo.SZ3, direction, sim_bytes)
        core = cengine_core_algo(dsg.algo)
        return self.host.codec_time(core, direction, sim_bytes)

    def _host_checksum_seconds(
        self, dsg: CompressionDesign, sim_bytes: float
    ) -> float:
        """zlib adler32/header time on a host core (0 for other algos).

        Direction-independent by construction: the checksum streams the
        uncompressed bytes whether it is being computed (compress) or
        verified (decompress).
        """
        if dsg.algo is not Algo.ZLIB:
            return 0.0
        # Host checksum work, scaled like the codecs.
        return self.dpu.cal.checksum_time(sim_bytes) / self.host.spec.perf_scale

    def _host_checksum(
        self, dsg: CompressionDesign, sim_bytes: float, breakdown: TimeBreakdown
    ) -> Generator:
        seconds = self._host_checksum_seconds(dsg, sim_bytes)
        if seconds > 0.0:
            yield from self.host.run(seconds)
            breakdown.add(PHASE_HEADER, seconds)

    def predicted_crossover_bytes(self, design_spec: "str | CompressionDesign") -> float:
        """Message size where DPU_ROUNDTRIP starts beating HOST_ONLY.

        Closed-form from the linear cost model (compression direction,
        ratio folded out of the PCIe return leg for simplicity).  Useful
        as a planning heuristic; the ablation bench measures the real
        crossover including the return-leg savings.
        """
        dsg = lookup_design(design_spec)
        core = cengine_core_algo(dsg.algo)
        resolved = resolve(self.dpu, dsg)
        if resolved.compress_engine != "cengine":
            return float("inf")  # fallback SoC never beats the host CPU
        cal = self.dpu.cal
        host_rate = (
            cal.soc_throughput[(core, Direction.COMPRESS)] * self.host.spec.perf_scale
        )
        engine_rate = cal.cengine_throughput[(core, Direction.COMPRESS)]
        per_byte_gain = 1.0 / host_rate - 1.0 / engine_rate - 2.0 / self.pcie.bandwidth
        fixed_cost = (
            2 * self.pcie.dma_setup_s + cal.cengine_overhead[Direction.COMPRESS]
        )
        if per_byte_gain <= 0:
            return float("inf")
        return fixed_cost / per_byte_gain
