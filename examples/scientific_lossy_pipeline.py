#!/usr/bin/env python3
"""Scientific lossy-compression pipeline (the paper's intro workload).

An HPC application producing molecular-dynamics snapshots wants to ship
them off-node with bounded error.  This example walks SZ3's modular
pipeline stage by stage (preprocess -> predict -> quantise -> encode ->
lossless backend), compares predictors and backends, verifies the error
bound, and then shows PEDAL's hybrid trick: rerouting only the lossless
stage to the BlueField-2 C-Engine (paper Fig. 4).

Run:  python examples/scientific_lossy_pipeline.py
"""

import numpy as np

from repro.algorithms.sz3 import SZ3Compressor, SZ3Config, sz3_decompress
from repro.core.sz3_hybrid import hybrid_sz3_compress
from repro.datasets import get_dataset
from repro.dpu.calibration import CAL_BF2
from repro.dpu.specs import Algo, Direction


def main() -> None:
    # Three MD snapshots of increasing temperature (== decreasing
    # compressibility), as in the paper's EXAALT suite.
    budget = 256 * 1024
    snapshots = {
        key: get_dataset(key).generate(budget)
        for key in ("exaalt-dataset1", "exaalt-dataset2", "exaalt-dataset3")
    }

    print("== predictor / backend comparison (error bound 1e-4) ==")
    print(f"{'dataset':17s} {'predictor':9s} {'backend':9s} {'ratio':>7s} {'max err':>10s}")
    for key, field in snapshots.items():
        for predictor in ("lorenzo", "interp"):
            for backend in ("zstdlite", "deflate", "lz4"):
                cfg = SZ3Config(
                    error_bound=1e-4, predictor=predictor, backend=backend
                )
                stream = SZ3Compressor(cfg).compress(field)
                recon = sz3_decompress(stream)
                err = np.abs(
                    recon.astype(np.float64) - field.astype(np.float64)
                ).max()
                assert err <= 1e-4 + 1e-6, "error bound violated!"
                print(
                    f"{key:17s} {predictor:9s} {backend:9s} "
                    f"{field.nbytes / len(stream):7.2f} {err:10.2e}"
                )

    print("\n== stage anatomy of one compression ==")
    field = snapshots["exaalt-dataset1"]
    compressor = SZ3Compressor(SZ3Config(error_bound=1e-4))
    compressor.compress(field)
    sizes = compressor.last_stage_sizes
    print(f"input           : {sizes.input_bytes:8d} bytes")
    print(f"entropy payload : {sizes.entropy_payload_bytes:8d} bytes "
          f"(after predict+quantise+Huffman)")
    print(f"backend blob    : {sizes.backend_blob_bytes:8d} bytes "
          f"(after the lossless stage)")
    print(f"final stream    : {sizes.stream_bytes:8d} bytes")

    print("\n== PEDAL's hybrid: offload the lossless stage ==")
    hybrid = hybrid_sz3_compress(field, SZ3Config(error_bound=1e-4))
    # What the simulated BF2 charges for the offloaded stage vs on-SoC:
    stage = hybrid.sizes.entropy_payload_bytes
    on_soc = stage / CAL_BF2.sz3_backend_deflate_throughput
    on_engine = CAL_BF2.cengine_time(Algo.DEFLATE, Direction.COMPRESS, stage)
    print(f"lossless stage over {stage} bytes:")
    print(f"  on SoC cores : {on_soc * 1e3:7.3f} ms (simulated)")
    print(f"  on C-Engine  : {on_engine * 1e3:7.3f} ms (simulated)")
    print(f"  ratio (hybrid stream): {field.nbytes / len(hybrid.stream):.2f} "
          f"— Table V(b)'s 'SZ3(C-Engine)' column")


if __name__ == "__main__":
    main()
