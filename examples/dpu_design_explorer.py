#!/usr/bin/env python3
"""Design-space explorer: all 8 PEDAL designs x both DPU generations.

For a workload of your choice (any Table IV dataset), prints where each
design actually executes after capability resolution (Table III), the
measured compression ratio, and the simulated compress/decompress cost
— the table a practitioner would use to pick a design for their
deployment.

Run:  python examples/dpu_design_explorer.py [dataset-key]
      python examples/dpu_design_explorer.py silesia/mozilla
"""

import sys

from repro.core import PedalContext
from repro.core.designs import ALL_DESIGNS
from repro.core.registry import resolve
from repro.datasets import DATASETS, get_dataset
from repro.dpu import make_device
from repro.sim import Environment


def drive(env, generator):
    proc = env.process(generator)
    return env.run(until=proc)


def main() -> None:
    key = sys.argv[1] if len(sys.argv) > 1 else "silesia/xml"
    if key not in DATASETS:
        raise SystemExit(f"unknown dataset {key!r}; pick one of {sorted(DATASETS)}")
    dataset = get_dataset(key)
    lossless = dataset.kind == "lossless"
    payload = dataset.generate(128 * 1024)
    nominal = dataset.nominal_bytes

    print(f"workload: {key} ({dataset.description}), "
          f"nominal {dataset.nominal_mb:.2f} MB\n")
    header = (f"{'device':6s} {'design':18s} {'comp@':8s} {'decomp@':8s} "
              f"{'fallback':8s} {'ratio':>7s} {'sim comp':>10s} {'sim decomp':>11s}")
    print(header)
    print("-" * len(header))

    for device_kind in ("bf2", "bf3"):
        env = Environment()
        device = make_device(env, device_kind)
        ctx = PedalContext(device)
        drive(env, ctx.init())
        for design in ALL_DESIGNS:
            if design.is_lossy == lossless:
                continue  # lossy designs need float arrays and vice versa
            resolved = resolve(device, design)
            comp = drive(env, ctx.compress(payload, design, nominal))
            dec = drive(
                env, ctx.decompress(comp.message, design.placement, nominal)
            )
            print(
                f"{device_kind:6s} {design.label:18s} "
                f"{resolved.compress_engine:8s} {resolved.decompress_engine:8s} "
                f"{'yes' if resolved.any_fallback else 'no':8s} "
                f"{comp.ratio:7.2f} "
                f"{comp.sim_seconds * 1e3:7.2f} ms "
                f"{dec.sim_seconds * 1e3:8.2f} ms"
            )
        drive(env, ctx.finalize())
        print()

    print("comp@/decomp@ = engine after Table III capability resolution;")
    print("'fallback yes' marks C-Engine designs redirected to the SoC.")


if __name__ == "__main__":
    main()
