#!/usr/bin/env python3
"""Quickstart: compress a buffer with PEDAL on a simulated BlueField-2.

Demonstrates the core workflow from the paper's Listing 1:

    PEDAL_init -> PEDAL_compress -> PEDAL_decompress -> PEDAL_finalize

Every design produces *real* compressed bytes (from-scratch DEFLATE /
zlib / LZ4 / SZ3 codecs) while the simulated clock reports what the
operation would cost on the BlueField-2's SoC vs C-Engine.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import PedalContext
from repro.datasets import get_dataset
from repro.dpu import make_device
from repro.sim import Environment


def drive(env, generator):
    """Run one simulation generator to completion."""
    proc = env.process(generator)
    return env.run(until=proc)


def main() -> None:
    env = Environment()
    device = make_device(env, "bf2")
    ctx = PedalContext(device)

    # PEDAL_init: DOCA session + buffer pool, paid once.
    init = drive(env, ctx.init())
    print(f"PEDAL_init on {device.name}: {init.total() * 1e3:.1f} ms "
          f"(DOCA init + buffer-pool prewarm)\n")

    # A text payload (synthetic silesia/samba stand-in, 128 KiB).
    payload = get_dataset("silesia/samba").generate(128 * 1024)
    print(f"payload: {len(payload)} bytes of source-code-like text\n")

    print(f"{'design':18s} {'ratio':>7s} {'sim compress':>14s} {'sim decompress':>15s}")
    for design in ("SoC_DEFLATE", "C-Engine_DEFLATE", "SoC_zlib",
                   "C-Engine_zlib", "SoC_LZ4", "C-Engine_LZ4"):
        comp = drive(env, ctx.compress(payload, design))
        dec = drive(env, ctx.decompress(comp.message, comp.design.placement))
        assert dec.data == payload  # lossless roundtrip
        print(f"{design:18s} {comp.ratio:7.2f} "
              f"{comp.sim_seconds * 1e3:11.2f} ms {dec.sim_seconds * 1e3:12.2f} ms")

    # Lossy: SZ3 over a scientific float field, error bound 1e-4.
    field = get_dataset("exaalt-dataset1").generate(128 * 1024)
    comp = drive(env, ctx.compress(field, "C-Engine_SZ3"))
    dec = drive(env, ctx.decompress(comp.message, comp.design.placement))
    err = np.abs(dec.data.astype(np.float64) - field.astype(np.float64)).max()
    print(f"\n{'C-Engine_SZ3':18s} {comp.ratio:7.2f} "
          f"{comp.sim_seconds * 1e3:11.2f} ms {dec.sim_seconds * 1e3:12.2f} ms"
          f"   max error {err:.2e} (bound 1e-4)")

    drive(env, ctx.finalize())
    print("\nPEDAL_finalize: done.")


if __name__ == "__main__":
    main()
