#!/usr/bin/env python3
"""Deployment planner: where should this workload compress?

Combines two extensions built from the paper's §VI discussion:

1. the automatic design chooser (rank the eight designs for a message
   by predicted compress + wire + decompress time), and
2. the host-offload model (MPI on the host, compression on the DPU,
   data crossing PCIe), sweeping message sizes to find the placement
   crossover the paper asks the community to assess.

Run:  python examples/host_offload_planner.py
"""

from repro.core.autodesign import choose_design, estimate_ratio
from repro.datasets import get_dataset
from repro.dpu import make_device
from repro.host import HOST_XEON, PCIE_GEN4_X16, HostNode, HostOffloadEngine, OffloadPath
from repro.sim import Environment


def drive(env, gen):
    return env.run(until=env.process(gen))


def main() -> None:
    env = Environment()
    bf2 = make_device(env, "bf2")
    payload = get_dataset("silesia/mozilla").generate(64 * 1024)
    ratio = estimate_ratio(payload)
    print(f"workload: executable-like bytes, LZ4-estimated ratio {ratio:.2f}\n")

    # --- 1. design ranking on the DPU-resident deployment -----------------
    print("== design ranking (DPU-resident ranks, BF2 -> BF2, 48.85 MB) ==")
    # include_raw=False: show the full ranking even where the unloaded
    # 200 Gb/s wire would beat compression outright (see the RNDV
    # ablation bench for that comparison).
    ranked = choose_design(bf2, bf2, 48.85e6, expected_ratio=ratio, include_raw=False)
    print(f"{'rank':4s} {'design':18s} {'predicted':>11s} "
          f"{'compress':>10s} {'wire':>9s} {'decompress':>11s}")
    for i, choice in enumerate(ranked, 1):
        print(f"{i:<4d} {choice.design.label:18s} "
              f"{choice.predicted_seconds * 1e3:8.2f} ms "
              f"{choice.compress_seconds * 1e3:7.2f} ms "
              f"{choice.transfer_seconds * 1e3:6.2f} ms "
              f"{choice.decompress_seconds * 1e3:8.2f} ms")

    # --- 2. host-offload placement sweep ----------------------------------
    print("\n== host-offload placement (MPI on host, BF2 card, PCIe Gen4 x16) ==")
    engine = HostOffloadEngine(HostNode(env, HOST_XEON), bf2, PCIE_GEN4_X16)
    drive(env, engine.init())
    crossover = engine.predicted_crossover_bytes("C-Engine_DEFLATE")
    print(f"closed-form host-vs-offload crossover: ~{crossover / 1e3:.0f} KB\n")

    print(f"{'message':>10s} {'host only':>11s} {'DPU roundtrip':>14s} "
          f"{'DPU inline':>11s}  winner")
    for nominal in (8e3, 64e3, 1e6, 16e6, 48.85e6):
        times = {}
        for path in OffloadPath:
            result = drive(
                env, engine.compress(payload, "C-Engine_DEFLATE", path, nominal)
            )
            times[path] = result.sim_seconds
        winner = min(times, key=times.get)
        print(f"{nominal / 1e6:8.3f}MB "
              f"{times[OffloadPath.HOST_ONLY] * 1e3:8.3f} ms "
              f"{times[OffloadPath.DPU_ROUNDTRIP] * 1e3:11.3f} ms "
              f"{times[OffloadPath.DPU_INLINE] * 1e3:8.3f} ms  {winner.value}")

    print("\nSmall messages stay on the host CPU; past the crossover the "
          "C-Engine wins even\nafter paying PCIe — and inline injection "
          "(send from the DPU NIC) always beats the\nround-trip, the "
          "co-design direction §VI points at.")


if __name__ == "__main__":
    main()
