#!/usr/bin/env python3
"""Compressed MPI broadcast on a simulated 4-node BlueField cluster.

The paper's Fig. 11 scenario: broadcast a large dataset from rank 0 to
four DPU nodes, with PEDAL compressing inside MPI_Send and
decompressing inside MPI_Recv at every binomial-tree hop — against the
naive baseline that re-initialises DOCA per message.

Run:  python examples/mpi_compressed_bcast.py
"""

from repro.datasets import get_dataset
from repro.mpi import CommConfig, CommMode, run_mpi

N_NODES = 4
NOMINAL_BYTES = 20.6e6  # the paper's "medium" message
ACTUAL_BYTES = 96 * 1024


def make_program(payload, verify):
    def program(ctx):
        data = payload if ctx.rank == 0 else None
        t0 = ctx.wtime()
        out = yield from ctx.bcast(data, root=0, sim_bytes=NOMINAL_BYTES)
        elapsed = ctx.wtime() - t0
        assert verify(out), f"rank {ctx.rank}: broadcast payload corrupted"
        return elapsed

    return program


def main() -> None:
    text = get_dataset("silesia/samba").generate(ACTUAL_BYTES)
    program = make_program(text, lambda out: out == text)

    print(f"MPI_Bcast of a {NOMINAL_BYTES / 1e6:.1f} MB (nominal) message "
          f"across {N_NODES} nodes\n")
    print(f"{'cluster':8s} {'mode':22s} {'bcast time':>12s} {'vs baseline':>12s}")

    baseline = None
    runs = [
        ("bf2", CommMode.NAIVE, "C-Engine_DEFLATE", "baseline (naive)"),
        ("bf2", CommMode.RAW, None, "raw (no compression)"),
        ("bf2", CommMode.PEDAL, "SoC_DEFLATE", "PEDAL SoC_DEFLATE"),
        ("bf2", CommMode.PEDAL, "C-Engine_DEFLATE", "PEDAL C-Engine_DEFLATE"),
        ("bf3", CommMode.PEDAL, "SoC_DEFLATE", "PEDAL SoC_DEFLATE"),
        ("bf3", CommMode.PEDAL, "C-Engine_DEFLATE", "PEDAL C-Engine_DEFLATE"),
    ]
    for device, mode, design, label in runs:
        cfg = CommConfig(mode=mode, design=design)
        result = run_mpi(program, N_NODES, device, cfg)
        elapsed = max(result.returns)
        if baseline is None:
            baseline = elapsed
        print(f"{device:8s} {label:22s} {elapsed * 1e3:9.2f} ms "
              f"{baseline / elapsed:11.1f}x")

    print("\nNote how PEDAL's C-Engine design on BF2 dominates, while the "
          "same design on BF3\nfalls back to SoC compression (Table III) "
          "and loses its edge — the paper's §V-E story.")


if __name__ == "__main__":
    main()
