"""Ablation: broadcast algorithm choice (binomial vs scatter+allgather).

MPICH switches to scatter + ring-allgather for long messages; this
ablation verifies the crossover exists in our fabric model and shows
how PEDAL compression interacts with it (compression happens per hop,
so the ring's smaller chunks shift the codec/wire balance).
"""

import pytest

from repro.datasets import get_dataset
from repro.mpi import CommConfig, CommMode, run_mpi

ACTUAL = 32 * 1024


def _bcast_time(n_nodes, nominal, algorithm, mode=CommMode.RAW, design=None):
    payload = get_dataset("silesia/samba").generate(ACTUAL)

    def program(ctx):
        data = payload if ctx.rank == 0 else None
        t0 = ctx.wtime()
        out = yield from ctx.bcast(
            data, root=0, sim_bytes=nominal, algorithm=algorithm
        )
        assert out == payload
        return ctx.wtime() - t0

    cfg = CommConfig(mode=mode, design=design)
    return max(run_mpi(program, n_nodes, "bf2", cfg).returns)


def test_large_message_crossover_raw(benchmark):
    def sweep():
        rows = {}
        for algorithm in ("binomial", "scatter_allgather"):
            rows[algorithm] = _bcast_time(8, 48.8e6, algorithm)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # 8 nodes, 48.8 MB: the ring must beat the tree on raw wire time.
    assert rows["scatter_allgather"] < rows["binomial"]


def test_small_message_prefers_binomial_raw(benchmark):
    tree = benchmark.pedantic(
        _bcast_time, args=(8, 128e3, "binomial"), rounds=1, iterations=1
    )
    ring = _bcast_time(8, 128e3, "scatter_allgather")
    # Short messages: latency/handshake terms dominate; the tree's
    # log(p) depth beats the ring's p-1 steps.
    assert tree < ring


@pytest.mark.parametrize("algorithm", ["binomial", "scatter_allgather"])
def test_pedal_correct_under_both(benchmark, algorithm):
    elapsed = benchmark.pedantic(
        _bcast_time,
        args=(4, 20.6e6, algorithm, CommMode.PEDAL, "C-Engine_DEFLATE"),
        rounds=1,
        iterations=1,
    )
    assert elapsed > 0


def test_pedal_chunking_amortises_engine_overhead(benchmark):
    """Under PEDAL, ring chunks re-enter the compressor per hop; the
    per-job overhead tax grows with chunk count — quantify it."""
    tree = benchmark.pedantic(
        _bcast_time,
        args=(4, 48.8e6, "binomial", CommMode.PEDAL, "C-Engine_DEFLATE"),
        rounds=1,
        iterations=1,
    )
    ring = _bcast_time(
        4, 48.8e6, "scatter_allgather", CommMode.PEDAL, "C-Engine_DEFLATE"
    )
    # Both must complete; the comparison direction is data-dependent,
    # but neither should be pathologically (>20x) worse.
    assert ring < tree * 20 and tree < ring * 20
