"""Regenerate Fig. 11 and assert the collective headline bands.

Paper claims re-checked (§V-E):
* BF2's C-Engine: up to 68x faster broadcast than the naive baseline
  (measured here ~25-35x: our binomial tree serialises fewer naive
  per-hop overheads than the paper's setup — same order, see
  EXPERIMENTS.md);
* BF3's SoC: ~49% average reduction in broadcast time.
"""

from conftest import run_once

from repro.bench.harness import run_experiment


def test_fig11(benchmark, experiment_kwargs):
    result = run_once(benchmark, run_experiment, "fig11", **experiment_kwargs)
    h = result.headlines

    assert 15 <= h["bf2_cengine_best_speedup_vs_baseline (paper ~68)"] <= 90
    assert 0.35 <= h["bf3_soc_mean_bcast_reduction (paper ~0.49)"] <= 0.60

    # Every BF2 PEDAL row beats its own naive baseline.  BF3 C-Engine
    # designs are allowed to lose — the paper's own observation: they
    # "occasionally even register a slight increase in latency compared
    # to the baseline" (§V-E).
    for row in result.rows:
        if row["design"].startswith("Baseline_"):
            continue
        if row["device"] == "bf2":
            assert row["vs_baseline"] > 1.0
        elif row["design"].startswith("SoC_"):
            assert row["vs_baseline"] > 1.0
    bf3_engine_worst = min(
        row["vs_baseline"]
        for row in result.rows
        if row["device"] == "bf3" and row["design"].startswith("C-Engine_")
    )
    assert bf3_engine_worst < 1.0  # the BF3 C-Engine penalty is visible

    # Broadcast time grows with message size per design/device.
    order = {"small": 0, "medium": 1, "large": 2}
    curves = {}
    for row in result.rows:
        curves.setdefault((row["device"], row["design"]), []).append(
            (order[row["message"]], row["bcast_s"])
        )
    for points in curves.values():
        points.sort()
        times = [t for _, t in points]
        assert times == sorted(times)
