"""Ablation: PEDAL memory-pool sizing under concurrent message streams.

The pool is the mechanism behind the paper's headline overhead removal;
this ablation quantifies what happens when it is undersized: concurrent
in-flight messages overflow the pre-mapped buffers and pay full DMA
registration (pool misses) at runtime.
"""

import pytest

from repro.core import PedalConfig, PedalContext
from repro.datasets import get_dataset
from repro.dpu import make_device
from repro.sim import Environment

N_STREAMS = 8
NOMINAL = 5.1e6


def _run_concurrent(pool_buffers: int):
    env = Environment()
    device = make_device(env, "bf2")
    ctx = PedalContext(device, PedalConfig(pool_buffers=pool_buffers))
    env.run(until=env.process(ctx.init()))
    payload = get_dataset("silesia/xml").generate(32 * 1024)

    t0 = env.now

    def stream(env, ctx):
        result = yield from ctx.compress(payload, "C-Engine_DEFLATE", NOMINAL)
        return result

    procs = [env.process(stream(env, ctx)) for _ in range(N_STREAMS)]
    env.run(until=env.all_of(procs))
    assert ctx.pool is not None
    return env.now - t0, ctx.pool.stats


@pytest.mark.parametrize("pool_buffers", [1, 4, 8])
def test_pool_sizing(benchmark, pool_buffers):
    elapsed, stats = benchmark.pedantic(
        _run_concurrent, args=(pool_buffers,), rounds=1, iterations=1
    )
    assert stats.acquisitions == N_STREAMS
    if pool_buffers >= N_STREAMS:
        assert stats.misses == 0
    else:
        assert stats.misses == N_STREAMS - pool_buffers
        assert stats.grow_seconds > 0


def test_undersized_pool_costs_runtime_time(benchmark):
    starved, starved_stats = benchmark.pedantic(
        _run_concurrent, args=(1,), rounds=1, iterations=1
    )
    sized, sized_stats = _run_concurrent(N_STREAMS)
    assert starved_stats.misses > sized_stats.misses == 0
    # Pool misses surface as real simulated runtime (DMA registration).
    assert starved > sized
