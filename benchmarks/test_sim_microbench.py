"""Wall-clock microbenchmarks of the simulation substrate.

Tracks the DES kernel's event throughput and the cost of a full
simulated MPI exchange — the fixed overhead every experiment pays.

The event/resource churn counts are payload-independent (they measure
the kernel, not codec work); the MPI exchange honors ``--repro-bytes``
for its real payload so ``pytest benchmarks --repro-bytes=4096`` stays
uniformly fast.
"""

import pytest

from repro.mpi import CommConfig, CommMode, run_mpi
from repro.sim import Environment, Resource

DEFAULT_PAYLOAD_BYTES = 100000


@pytest.fixture
def payload_bytes(actual_bytes):
    return DEFAULT_PAYLOAD_BYTES if actual_bytes is None else actual_bytes


def _event_churn(n_events: int) -> float:
    env = Environment()

    def ticker(env):
        for _ in range(n_events):
            yield env.timeout(1.0)

    env.process(ticker(env))
    env.run()
    return env.now


def test_des_event_throughput(benchmark):
    now = benchmark(_event_churn, 5000)
    assert now == 5000.0


def _resource_churn(n_jobs: int) -> int:
    env = Environment()
    res = Resource(env, capacity=2)
    done = []

    def job(env, res):
        req = res.request()
        yield req
        yield env.timeout(1.0)
        res.release(req)
        done.append(1)

    for _ in range(n_jobs):
        env.process(job(env, res))
    env.run()
    return len(done)


def test_resource_throughput(benchmark):
    assert benchmark(_resource_churn, 2000) == 2000


def _pingpong_once(n_bytes: int = DEFAULT_PAYLOAD_BYTES) -> float:
    payload = b"z" * n_bytes

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, payload)
            yield from ctx.recv(source=1)
            return ctx.wtime()
        data = yield from ctx.recv(source=0)
        yield from ctx.send(0, data)

    cfg = CommConfig(mode=CommMode.PEDAL, design="C-Engine_DEFLATE")
    return run_mpi(program, 2, "bf2", cfg).returns[0]


def test_simulated_mpi_exchange(benchmark, payload_bytes):
    assert benchmark(_pingpong_once, payload_bytes) > 0
