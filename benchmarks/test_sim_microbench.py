"""Wall-clock microbenchmarks of the simulation substrate.

Tracks the DES kernel's event throughput and the cost of a full
simulated MPI exchange — the fixed overhead every experiment pays.
"""

from repro.mpi import CommConfig, CommMode, run_mpi
from repro.sim import Environment, Resource


def _event_churn(n_events: int) -> float:
    env = Environment()

    def ticker(env):
        for _ in range(n_events):
            yield env.timeout(1.0)

    env.process(ticker(env))
    env.run()
    return env.now


def test_des_event_throughput(benchmark):
    now = benchmark(_event_churn, 5000)
    assert now == 5000.0


def _resource_churn(n_jobs: int) -> int:
    env = Environment()
    res = Resource(env, capacity=2)
    done = []

    def job(env, res):
        req = res.request()
        yield req
        yield env.timeout(1.0)
        res.release(req)
        done.append(1)

    for _ in range(n_jobs):
        env.process(job(env, res))
    env.run()
    return len(done)


def test_resource_throughput(benchmark):
    assert benchmark(_resource_churn, 2000) == 2000


def _pingpong_once() -> float:
    payload = b"z" * 100000

    def program(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, payload)
            yield from ctx.recv(source=1)
            return ctx.wtime()
        data = yield from ctx.recv(source=0)
        yield from ctx.send(0, data)

    cfg = CommConfig(mode=CommMode.PEDAL, design="C-Engine_DEFLATE")
    return run_mpi(program, 2, "bf2", cfg).returns[0]


def test_simulated_mpi_exchange(benchmark):
    assert benchmark(_pingpong_once) > 0
