"""Ablation: LZ77 matcher tuning — real ratio vs real wall-clock.

Unlike the figure benches, both axes here are genuine measurements of
the Python codecs: chain depth and lazy evaluation trade compression
ratio against matcher time, the classic zlib-level trade-off our
DeflateConfig exposes.
"""

import time

import pytest

from repro.algorithms.deflate import DeflateConfig, deflate_compress, deflate_decompress
from repro.algorithms.lz77 import MatcherConfig
from repro.datasets import get_dataset

PAYLOAD = 96 * 1024

CONFIGS = {
    "fast (chain=4, greedy)": MatcherConfig(max_chain=4, lazy=False),
    "default (chain=48, lazy)": MatcherConfig(),
    "thorough (chain=256, lazy)": MatcherConfig(max_chain=256, good_match=258),
}


@pytest.fixture(scope="module")
def payload():
    return get_dataset("silesia/samba").generate(PAYLOAD)


@pytest.mark.parametrize("name", list(CONFIGS))
def test_matcher_config(benchmark, payload, name):
    cfg = DeflateConfig(matcher=CONFIGS[name])
    stream = benchmark(deflate_compress, payload, cfg)
    assert deflate_decompress(stream) == payload


def test_ratio_monotone_in_effort(benchmark, payload):
    ratios = {}
    times = {}

    def sweep():
        for name, matcher in CONFIGS.items():
            cfg = DeflateConfig(matcher=matcher)
            t0 = time.perf_counter()
            stream = deflate_compress(payload, cfg)
            times[name] = time.perf_counter() - t0
            ratios[name] = len(payload) / len(stream)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    fast, default, thorough = (
        ratios["fast (chain=4, greedy)"],
        ratios["default (chain=48, lazy)"],
        ratios["thorough (chain=256, lazy)"],
    )
    assert fast <= default <= thorough * 1.001  # effort buys ratio
    assert thorough / fast < 1.5  # diminishing returns on this corpus
