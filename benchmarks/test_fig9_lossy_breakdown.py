"""Regenerate Fig. 9 and assert the SZ3 placement story.

Paper claims re-checked (§V-C2):
* BF2: SoC and C-Engine-assisted SZ3 are comparable, and the engine
  "does not detrimentally affect" performance;
* BF3: the SoC design wins by up to ~1.58x at 10 MB (fallback
  SoC-DEFLATE backend);
* decompression of lossy-compressed data consistently outperforms
  compression.
"""

from conftest import run_once

from repro.bench.harness import run_experiment


def test_fig9(benchmark, experiment_kwargs):
    result = run_once(benchmark, run_experiment, "fig9", **experiment_kwargs)
    h = result.headlines

    assert 0.8 <= h["bf2_cengine_over_soc_total_10MB (paper ~1.0)"] <= 1.1
    assert 1.3 <= h["bf3_soc_speedup_over_cengine_10MB (paper ~1.58)"] <= 1.9

    for row in result.rows:
        assert row["decompression_s"] < row["compression_s"]
        # Naive-flow rows carry per-op init on the engine path only.
        if row["design"] == "C-Engine_SZ3":
            assert row["doca_init_s"] > 0
        else:
            assert row["doca_init_s"] == 0.0
        # PEDAL hoists those overheads.
        assert row["pedal_total_s"] < row["total_s"]
