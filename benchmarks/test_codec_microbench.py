"""Wall-clock microbenchmarks of the from-scratch codecs.

These measure the *Python implementation's* real speed (pytest-benchmark
statistics), which is orthogonal to the simulated DPU times: useful for
tracking regressions in the pure-algorithm layer.

``--repro-bytes`` sets the payload size (default 64 KiB), so
``pytest benchmarks --repro-bytes=4096`` is uniformly fast.
"""

import pytest

from repro.algorithms.deflate import deflate_compress, deflate_decompress
from repro.algorithms.lz4 import lz4_compress, lz4_decompress
from repro.algorithms.sz3 import SZ3Config, sz3_compress, sz3_decompress
from repro.algorithms.zlib_format import zlib_compress
from repro.algorithms.zstdlite import zstdlite_compress
from repro.datasets import get_dataset

DEFAULT_PAYLOAD_BYTES = 64 * 1024


@pytest.fixture(scope="module")
def payload_bytes(actual_bytes):
    return DEFAULT_PAYLOAD_BYTES if actual_bytes is None else actual_bytes


@pytest.fixture(scope="module")
def text(payload_bytes):
    return get_dataset("silesia/samba").generate(payload_bytes)


@pytest.fixture(scope="module")
def floats(payload_bytes):
    return get_dataset("exaalt-dataset1").generate(payload_bytes)


class TestLosslessCompress:
    def test_deflate_compress(self, benchmark, text):
        stream = benchmark(deflate_compress, text)
        assert len(stream) < len(text)

    def test_zlib_compress(self, benchmark, text):
        stream = benchmark(zlib_compress, text)
        assert len(stream) < len(text)

    def test_lz4_compress(self, benchmark, text):
        stream = benchmark(lz4_compress, text)
        assert len(stream) < len(text)

    def test_zstdlite_compress(self, benchmark, text):
        stream = benchmark(zstdlite_compress, text)
        assert len(stream) < len(text)


class TestLosslessDecompress:
    def test_deflate_decompress(self, benchmark, text):
        stream = deflate_compress(text)
        out = benchmark(deflate_decompress, stream)
        assert out == text

    def test_lz4_decompress(self, benchmark, text):
        stream = lz4_compress(text)
        out = benchmark(lz4_decompress, stream)
        assert out == text


class TestLossy:
    def test_sz3_compress(self, benchmark, floats):
        stream = benchmark(sz3_compress, floats, SZ3Config(error_bound=1e-4))
        assert len(stream) < floats.nbytes

    def test_sz3_decompress(self, benchmark, floats):
        stream = sz3_compress(floats, SZ3Config(error_bound=1e-4))
        out = benchmark(sz3_decompress, stream)
        assert out.shape == floats.shape
