"""Wall-clock microbenchmarks of the from-scratch codecs.

These measure the *Python implementation's* real speed (pytest-benchmark
statistics), which is orthogonal to the simulated DPU times: useful for
tracking regressions in the pure-algorithm layer.

Every benchmark is parametrized over the kernel mode, so one run emits
a ``[vectorized]`` and a ``[scalar]`` row per codec — the pairwise diff
is the vectorization win on that host.  Setting ``REPRO_SCALAR_KERNELS``
in the environment skips the vectorized rows (the env var pins the
whole process to the scalar reference, so a vectorized row would be
mislabeled).

``--repro-bytes`` sets the payload size (default 64 KiB), so
``pytest benchmarks --repro-bytes=4096`` is uniformly fast.
"""

import pytest

from repro.algorithms.deflate import deflate_compress, deflate_decompress
from repro.algorithms.lz4 import lz4_compress, lz4_decompress
from repro.algorithms.sz3 import SZ3Config, sz3_compress, sz3_decompress
from repro.algorithms.zlib_format import zlib_compress
from repro.algorithms.zstdlite import zstdlite_compress
from repro.datasets import get_dataset
from repro.util.kernels import SCALAR, VECTORIZED, force_kernel_mode, scalar_kernels

DEFAULT_PAYLOAD_BYTES = 64 * 1024


@pytest.fixture(params=[VECTORIZED, SCALAR])
def kernel(request):
    """Kernel mode under test; honors a process-wide scalar pin."""
    if request.param == VECTORIZED and scalar_kernels():
        pytest.skip("REPRO_SCALAR_KERNELS pins this process to scalar kernels")
    return request.param


def _in_mode(mode, fn, *args):
    with force_kernel_mode(mode):
        return fn(*args)


@pytest.fixture(scope="module")
def payload_bytes(actual_bytes):
    return DEFAULT_PAYLOAD_BYTES if actual_bytes is None else actual_bytes


@pytest.fixture(scope="module")
def text(payload_bytes):
    return get_dataset("silesia/samba").generate(payload_bytes)


@pytest.fixture(scope="module")
def floats(payload_bytes):
    return get_dataset("exaalt-dataset1").generate(payload_bytes)


class TestLosslessCompress:
    def test_deflate_compress(self, benchmark, text, kernel):
        stream = benchmark(_in_mode, kernel, deflate_compress, text)
        assert len(stream) < len(text)

    def test_zlib_compress(self, benchmark, text, kernel):
        stream = benchmark(_in_mode, kernel, zlib_compress, text)
        assert len(stream) < len(text)

    def test_lz4_compress(self, benchmark, text, kernel):
        stream = benchmark(_in_mode, kernel, lz4_compress, text)
        assert len(stream) < len(text)

    def test_zstdlite_compress(self, benchmark, text, kernel):
        stream = benchmark(_in_mode, kernel, zstdlite_compress, text)
        assert len(stream) < len(text)


class TestLosslessDecompress:
    def test_deflate_decompress(self, benchmark, text, kernel):
        stream = deflate_compress(text)
        out = benchmark(_in_mode, kernel, deflate_decompress, stream)
        assert out == text

    def test_lz4_decompress(self, benchmark, text, kernel):
        stream = lz4_compress(text)
        out = benchmark(_in_mode, kernel, lz4_decompress, stream)
        assert out == text


class TestLossy:
    def test_sz3_compress(self, benchmark, floats, kernel):
        stream = benchmark(
            _in_mode, kernel, sz3_compress, floats, SZ3Config(error_bound=1e-4)
        )
        assert len(stream) < floats.nbytes

    def test_sz3_decompress(self, benchmark, floats, kernel):
        stream = sz3_compress(floats, SZ3Config(error_bound=1e-4))
        out = benchmark(_in_mode, kernel, sz3_decompress, stream)
        assert out.shape == floats.shape
