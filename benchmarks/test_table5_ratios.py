"""Regenerate Table V at the tuned 256 KiB budget and assert fidelity.

The measured DEFLATE/SZ3 ratios must land within 15% of the paper's
values with the paper's ordering preserved (this is the experiment
whose numbers are *real* measurements, not cost-model outputs).
"""

import pytest
from conftest import run_once

from repro.bench.experiments.table5_ratios import PAPER_LOSSLESS, PAPER_LOSSY
from repro.bench.harness import run_experiment

TUNED_BYTES = 256 * 1024


def test_table5(benchmark, actual_bytes):
    budget = actual_bytes or TUNED_BYTES
    if budget < TUNED_BYTES:
        pytest.skip(
            f"Table V fidelity bands are calibrated at {TUNED_BYTES} bytes; "
            f"--repro-bytes={budget} is too small to be representative"
        )
    result = run_once(benchmark, run_experiment, "table5", actual_bytes=budget)

    lossless = {r["dataset"]: r for r in result.rows if "DEFLATE" in r and r.get("DEFLATE")}
    lossy = {r["dataset"]: r for r in result.rows if "SZ3" in r and r.get("SZ3")}

    # Within-15% bands at the tuned budget.
    for key, paper in PAPER_LOSSLESS.items():
        assert lossless[key]["DEFLATE"] == pytest.approx(paper["DEFLATE"], rel=0.15)
    for key, paper in PAPER_LOSSY.items():
        assert lossy[key]["SZ3"] == pytest.approx(paper["SZ3"], rel=0.15)

    # Ordering preserved (DEFLATE column).
    measured_order = sorted(lossless, key=lambda k: lossless[k]["DEFLATE"])
    paper_order = sorted(PAPER_LOSSLESS, key=lambda k: PAPER_LOSSLESS[k]["DEFLATE"])
    assert measured_order == paper_order

    # zlib ratios equal DEFLATE at table precision; LZ4 trails DEFLATE.
    for key, row in lossless.items():
        assert row["zlib"] == pytest.approx(row["DEFLATE"], rel=0.01)
        assert row["LZ4"] < row["DEFLATE"]
