#!/usr/bin/env python
"""Regenerate ``BENCH_PR3.json`` — the deterministic perf trajectory.

Usage::

    PYTHONPATH=src python benchmarks/regress.py            # write + gate
    PYTHONPATH=src python benchmarks/regress.py --check    # gate only

All numbers are simulated clock readings, so the file is bit-for-bit
reproducible on any machine; ``tests/bench/test_regression_gates.py``
enforces both the headline bands and exact agreement with this file.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench import regress  # noqa: E402


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(__file__), "..", regress.DEFAULT_REPORT_PATH
        ),
        help="report path (default: BENCH_PR3.json at the repo root)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate the freshly collected numbers without writing the file",
    )
    args = parser.parse_args(argv)

    report = regress.collect()
    violations = regress.gate(report)
    for key, value in sorted(report["headlines"].items()):
        print(f"  {key:<40s} {value:10.4f}")
    if violations:
        print("REGRESSION GATE FAILED:")
        for v in violations:
            print(f"  - {v}")
        return 1
    if not args.check:
        regress.write_report(report, os.path.normpath(args.out))
        print(f"wrote {os.path.normpath(args.out)}")
    print("regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
