#!/usr/bin/env python
"""Regenerate the deterministic perf trajectories.

``BENCH_PR3.json`` carries the core-runtime headlines (PEDAL vs naive,
BF-3 vs BF-2 engine, pipelined vs serial work queue); ``BENCH_PR4.json``
carries the serving-layer offered-load vs goodput/p99 curves;
``BENCH_PR5.json`` carries the path-selection crossover sweep
(path="auto" vs the static paths); ``BENCH_PR6.json`` carries the
telemetry-plane trajectory (deterministic "sim" section) plus the
band-only wall-clock overhead gate ("wall" section); ``BENCH_PR7.json``
carries the adaptive-context coder sweep (ac-vs-DEFLATE ratio trade
plus the decoupled model/coder pipeline speedup); ``BENCH_PR9.json``
carries the fleet-cluster sweep (goodput saturation at 10-100x the
PR 4 offered loads, plus the mid-run worker-kill failover record);
``BENCH_PR10.json`` carries the streaming-rendezvous sweep (streamed
vs whole-message latency on the hypersparse telemetry stream).

Usage::

    PYTHONPATH=src python benchmarks/regress.py            # write + gate
    PYTHONPATH=src python benchmarks/regress.py --check    # gate only

All gated trajectories are simulated clock readings, so the files are
bit-for-bit reproducible on any machine (BENCH_PR6's "wall" section is
the one exception: host-local wall-clock readings, gated on bands and
re-measured at test time, never compared exactly); ``tests/bench/test_regression_gates.py``
enforces both the headline bands and exact agreement with these files.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench import regress  # noqa: E402


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    repo_root = os.path.join(os.path.dirname(__file__), "..")
    parser.add_argument(
        "--out",
        default=os.path.join(repo_root, regress.DEFAULT_REPORT_PATH),
        help="core report path (default: BENCH_PR3.json at the repo root)",
    )
    parser.add_argument(
        "--serve-out",
        default=os.path.join(repo_root, regress.DEFAULT_SERVE_REPORT_PATH),
        help="serve report path (default: BENCH_PR4.json at the repo root)",
    )
    parser.add_argument(
        "--select-out",
        default=os.path.join(repo_root, regress.DEFAULT_SELECT_REPORT_PATH),
        help="path-selection report path (default: BENCH_PR5.json at the "
             "repo root)",
    )
    parser.add_argument(
        "--obs-out",
        default=os.path.join(repo_root, regress.DEFAULT_OBS_REPORT_PATH),
        help="telemetry report path (default: BENCH_PR6.json at the repo "
             "root)",
    )
    parser.add_argument(
        "--edpc-out",
        default=os.path.join(repo_root, regress.DEFAULT_EDPC_REPORT_PATH),
        help="adaptive-context coder report path (default: BENCH_PR7.json "
             "at the repo root)",
    )
    parser.add_argument(
        "--wall-out",
        default=os.path.join(repo_root, regress.DEFAULT_WALL_REPORT_PATH),
        help="kernel-vectorization wall report path (default: "
             "BENCH_PR8.json at the repo root)",
    )
    parser.add_argument(
        "--cluster-out",
        default=os.path.join(repo_root, regress.DEFAULT_CLUSTER_REPORT_PATH),
        help="fleet-cluster report path (default: BENCH_PR9.json at the "
             "repo root)",
    )
    parser.add_argument(
        "--stream-out",
        default=os.path.join(repo_root, regress.DEFAULT_STREAM_REPORT_PATH),
        help="streaming-rendezvous report path (default: BENCH_PR10.json "
             "at the repo root)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate the freshly collected numbers without writing the files",
    )
    args = parser.parse_args(argv)

    violations = []
    for label, collect, gate, out in (
        ("core", regress.collect, regress.gate, args.out),
        ("serve", regress.collect_serve, regress.gate_serve, args.serve_out),
        ("select", regress.collect_select, regress.gate_select,
         args.select_out),
        ("obs", regress.collect_obs, regress.gate_obs, args.obs_out),
        ("edpc", regress.collect_edpc, regress.gate_edpc, args.edpc_out),
        ("wall", regress.collect_wallclock, regress.gate_wallclock,
         args.wall_out),
        ("cluster", regress.collect_cluster, regress.gate_cluster,
         args.cluster_out),
        ("stream", regress.collect_stream, regress.gate_stream,
         args.stream_out),
    ):
        report = collect()
        violations += gate(report)
        if label == "obs":
            headlines = dict(report["sim"]["headlines"])
            headlines.update(report["wall"]["headlines"])
        elif label == "wall":
            headlines = report["wall"]["headlines"]
        else:
            headlines = report["headlines"]
        for key, value in sorted(headlines.items()):
            print(f"  {key:<48s} {value:12.6g}")
        if not violations and not args.check:
            regress.write_report(report, os.path.normpath(out))
            print(f"wrote {os.path.normpath(out)}")
    if violations:
        print("REGRESSION GATE FAILED:")
        for v in violations:
            print(f"  - {v}")
        return 1
    print("regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
