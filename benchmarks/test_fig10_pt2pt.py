"""Regenerate Fig. 10 and assert the communication headline bands.

Paper claims re-checked (§V-D):
* PEDAL C-Engine DEFLATE/zlib up to ~88x faster than the baseline on
  BF2 (measured here: ~80x at the small end of the sweep);
* BF3 SoC designs reduce latency by up to ~40% vs BF2 SoC;
* BF3 C-Engine DEFLATE/zlib can exceed even the baseline;
* SZ3 latency reductions of ~47.3% (BF2) / ~48% (BF3).
"""

from conftest import run_once

from repro.bench.harness import run_experiment


def test_fig10(benchmark, experiment_kwargs):
    result = run_once(benchmark, run_experiment, "fig10", **experiment_kwargs)
    h = result.headlines

    assert 40 <= h["bf2_cengine_best_speedup_vs_baseline (paper ~88)"] <= 120
    assert 0.30 <= h["bf3_soc_latency_reduction_vs_bf2 (paper ~0.40)"] <= 0.50
    assert h["bf3_cengine_worst_latency_over_baseline (paper >1)"] > 1.0
    assert 0.35 <= h["bf2_sz3_latency_reduction_vs_baseline (paper ~0.473)"] <= 0.60
    assert 0.40 <= h["bf3_sz3_latency_reduction_vs_baseline (paper ~0.48)"] <= 0.75

    # Latency grows with message size within every curve.
    curves = {}
    for row in result.rows:
        key = (row["panel"], row["dataset"], row["device"], row["design"])
        curves.setdefault(key, []).append((row["msg_mb"], row["latency_s"]))
    for points in curves.values():
        points.sort()
        latencies = [lat for _, lat in points]
        assert latencies == sorted(latencies)
