"""Shared benchmark configuration.

Each driver regenerates one paper artifact via
:func:`repro.bench.harness.run_experiment`, measures it under
pytest-benchmark (single round — the simulation is deterministic, so
repeated rounds only re-measure Python overhead), and asserts the
paper-shape headline bands.

``--repro-bytes`` controls the synthetic payload budget (default:
the per-experiment defaults, 64–96 KiB).
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--repro-bytes",
        type=int,
        default=None,
        help="synthetic payload budget per dataset for experiment benches",
    )


@pytest.fixture(scope="session")
def actual_bytes(request):
    return request.config.getoption("--repro-bytes")


@pytest.fixture(scope="session")
def experiment_kwargs(actual_bytes):
    return {} if actual_bytes is None else {"actual_bytes": actual_bytes}


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark a deterministic, expensive callable with one round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
