"""Regenerate Fig. 7 and assert its headline shape.

Paper claims re-checked:
* DOCA init + buffer prep ≈ 94% of a naive 5.1 MB C-Engine op pair;
* naive C-Engine accelerates lossless designs on BF2 by up to ~9.67x.
"""

from conftest import run_once

from repro.bench.harness import run_experiment


def test_fig7(benchmark, experiment_kwargs):
    result = run_once(benchmark, run_experiment, "fig7", **experiment_kwargs)

    frac = result.headlines["bf2_cengine_deflate_xml_overhead_frac (paper ~0.94)"]
    assert 0.88 <= frac <= 0.99

    best = result.headlines["bf2_naive_cengine_best_speedup (paper ~9.67)"]
    assert 5.0 <= best <= 15.0

    # Structural: every C-Engine row on BF2 carries the one-time costs.
    for row in result.rows:
        if row["device"] == "bf2" and row["design"] in (
            "C-Engine_DEFLATE",
            "C-Engine_zlib",
        ):
            assert row["doca_init_s"] > 0
            assert row["buffer_prep_s"] > 0
            assert row["overhead_frac"] > 0.5

    # Buffer prep grows with dataset size within a design.
    for design in ("C-Engine_DEFLATE", "SoC_DEFLATE"):
        preps = [
            r["buffer_prep_s"]
            for r in result.rows
            if r["device"] == "bf2" and r["design"] == design
        ]
        assert preps == sorted(preps)
