"""Ablation: chunk-parallel compression across SoC cores + C-Engine.

The paper's §IV/§V-C2 future-work direction ("parallel compression and
decompression" / "hybrid design avenue for exploiting both SoC and
C-Engine in parallel"), quantified: simulated makespan vs chunk count,
SoC-only vs engine-assisted, plus the real ratio cost of chunk
independence.
"""

import pytest

from repro.core.parallel import ParallelCompressor, ParallelConfig
from repro.datasets import get_dataset
from repro.dpu import make_device
from repro.sim import Environment

NOMINAL = 48.85e6
ACTUAL = 64 * 1024


def _run(n_chunks: int, use_cengine: bool):
    env = Environment()
    device = make_device(env, "bf2")
    payload = get_dataset("silesia/mozilla").generate(ACTUAL)
    pc = ParallelCompressor(
        device, ParallelConfig(n_chunks=n_chunks, use_cengine=use_cengine)
    )
    proc = env.process(pc.compress(payload, NOMINAL))
    result = env.run(until=proc)
    return result


@pytest.mark.parametrize("n_chunks", [1, 4, 8, 16])
def test_soc_scaling(benchmark, n_chunks):
    result = benchmark.pedantic(
        _run, args=(n_chunks, False), rounds=1, iterations=1
    )
    # Perfect scaling up to the 8-core pool, then saturation.
    serial = 48.85e6 / 25e6
    expected = serial / min(n_chunks, 8)
    assert result.sim_seconds == pytest.approx(expected, rel=0.05)


def test_engine_assist_dominates(benchmark):
    hybrid = benchmark.pedantic(_run, args=(8, True), rounds=1, iterations=1)
    soc_only = _run(8, False)
    # The engine is so much faster it absorbs the whole chunk stream...
    assert hybrid.chunks_on_engine == 8
    # ...and beats the 8-core SoC fan-out by a wide margin.
    assert hybrid.sim_seconds * 5 < soc_only.sim_seconds


def test_parallel_vs_single_engine_job(benchmark):
    """Chunking the engine's work adds per-job overhead: 8 jobs cost
    ~7 extra overheads over one big job — the trade the future-work
    hybrid design must balance.  Under the pipelined work queue
    (``repro.sched``) the fill/drain edges of the pipeline add one
    buffer-map lead-in and one CRC-drain tail; every interior map and
    drain overlaps engine execution."""
    device = make_device(Environment(), "bf2")
    from repro.dpu.specs import Algo, Direction

    one_job = device.cal.cengine_time(Algo.DEFLATE, Direction.COMPRESS, NOMINAL)
    hybrid = benchmark.pedantic(_run, args=(8, True), rounds=1, iterations=1)
    assert hybrid.sim_seconds > one_job
    overhead = device.cal.cengine_overhead[Direction.COMPRESS]
    chunk = NOMINAL / 8
    pipeline_edges = (
        device.memory.alloc_time(chunk)
        + device.memory.dma_map_time(chunk)
        + device.cal.checksum_time(chunk)
    )
    assert hybrid.sim_seconds == pytest.approx(
        one_job + 7 * overhead + pipeline_edges, rel=0.05
    )
