"""Ablation: PEDAL's rendezvous-threshold compression rule (paper §IV).

PEDAL skips compression below the RNDV threshold "due to the latency
overhead of compression and decompression operation, which prevent
compression techniques from benefiting short messages".

An honest finding of this model: on an *unloaded* 200 Gb/s link, raw
transfers beat compressed ones at every size (the C-Engine's ~2.9 GB/s
is an order of magnitude below the wire) — the paper's latency wins are
against its compression-enabled baseline, not against raw MPI.  The
threshold rule still matters: the relative penalty of compressing is
catastrophic for short messages and shrinks steadily with size, which
is exactly the behaviour this sweep quantifies.  Compression *does* win
outright once the payload's wire time exceeds the codec time — e.g. on
slower/contended fabrics — as the reduced-bandwidth sweep at the end
shows.
"""

from repro.datasets import get_dataset
from repro.mpi import CommConfig, CommMode, run_mpi

ACTUAL = 16 * 1024


def _latency(nominal, rndv_threshold, device="bf2"):
    payload = get_dataset("silesia/xml").generate(ACTUAL)

    def program(ctx):
        if ctx.rank == 0:
            t0 = ctx.wtime()
            yield from ctx.send(1, payload, sim_bytes=nominal)
            yield from ctx.recv(source=1)
            return (ctx.wtime() - t0) / 2
        data = yield from ctx.recv(source=0)
        yield from ctx.send(0, data, sim_bytes=nominal)
        return None

    cfg = CommConfig(
        mode=CommMode.PEDAL,
        design="C-Engine_DEFLATE",
        rndv_threshold=rndv_threshold,
    )
    return run_mpi(program, 2, device, cfg).returns[0]


def test_rndv_threshold_rule(benchmark):
    def sweep():
        rows = []
        for nominal in (16e3, 64e3, 256e3, 1e6, 5.1e6, 48.85e6):
            passthrough = _latency(nominal, rndv_threshold=2**62)  # never compress
            compressed = _latency(nominal, rndv_threshold=0)  # always compress
            rows.append((nominal, passthrough, compressed))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    penalties = [(n, c / p) for n, p, c in rows]

    # The compression penalty is enormous for short messages...
    assert penalties[0][1] > 100
    # ...and decays monotonically with message size...
    factors = [f for _, f in penalties]
    assert factors == sorted(factors, reverse=True)
    # ...but never drops below 1 on this unloaded 200 Gb/s fabric.
    assert factors[-1] > 1.0


def test_compression_wins_on_slow_fabric(benchmark):
    """Shrink the wire to 5 Gb/s: now data reduction pays outright,
    and the threshold rule's crossover appears inside the sweep."""
    from dataclasses import replace

    from repro.dpu import make_device
    from repro.sim import Environment

    def latency(nominal, rndv_threshold):
        env = Environment()
        devices = []
        for _ in range(2):
            device = make_device(env, "bf2")
            slow_nic = replace(device.spec.nic, rate_gbps=5.0)
            device.spec = replace(device.spec, nic=slow_nic)
            devices.append(device)
        payload = get_dataset("silesia/xml").generate(ACTUAL)

        def program(ctx):
            if ctx.rank == 0:
                t0 = ctx.wtime()
                yield from ctx.send(1, payload, sim_bytes=nominal)
                yield from ctx.recv(source=1)
                return (ctx.wtime() - t0) / 2
            data = yield from ctx.recv(source=0)
            yield from ctx.send(0, data, sim_bytes=nominal)
            return None

        cfg = CommConfig(
            mode=CommMode.PEDAL,
            design="C-Engine_DEFLATE",
            rndv_threshold=rndv_threshold,
        )
        return run_mpi(program, 2, devices=devices, env=env, comm_config=cfg).returns[0]

    # Small message: passthrough still wins.
    small_passthrough = benchmark.pedantic(
        latency, args=(64e3, 2**62), rounds=1, iterations=1
    )
    assert small_passthrough < latency(64e3, 0)
    # Large message on the slow wire: compression now wins outright.
    assert latency(48.85e6, 0) < latency(48.85e6, 2**62)
