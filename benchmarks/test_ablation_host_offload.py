"""Ablation: host-offload placement crossover (paper §VI).

"It is crucial to assess the overhead associated with data movement
between the host and DPU" — this bench sweeps message sizes and reports
where compressing on the host loses to shipping data to the DPU's
C-Engine (round-trip and inline variants).
"""

from repro.datasets import get_dataset
from repro.dpu import make_device
from repro.host import HOST_XEON, PCIE_GEN4_X16, HostNode, HostOffloadEngine, OffloadPath
from repro.sim import Environment

# The closed-form crossover sits near ~19 KB (fixed PCIe+job overheads
# over the per-byte host-vs-engine gain); sweep well past both sides.
SIZES = [4e3, 64e3, 1e6, 16e6, 48.85e6]


def _sweep():
    env = Environment()
    engine = HostOffloadEngine(
        HostNode(env, HOST_XEON), make_device(env, "bf2"), PCIE_GEN4_X16
    )
    env.run(until=env.process(engine.init()))
    payload = get_dataset("silesia/mozilla").generate(48 * 1024)

    rows = []
    for nominal in SIZES:
        times = {}
        for path in OffloadPath:
            proc = env.process(
                engine.compress(payload, "C-Engine_DEFLATE", path, nominal)
            )
            result = env.run(until=proc)
            times[path] = result.sim_seconds
        rows.append((nominal, times))
    return rows


def test_host_offload_crossover(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    by_size = dict(rows)

    # Inline (one PCIe crossing) always beats round-trip (two).
    for times in by_size.values():
        assert times[OffloadPath.DPU_INLINE] < times[OffloadPath.DPU_ROUNDTRIP]

    # Small messages: host CPU wins; large: the C-Engine wins even
    # after paying PCIe both ways.
    small = by_size[SIZES[0]]
    large = by_size[SIZES[-1]]
    assert small[OffloadPath.HOST_ONLY] < small[OffloadPath.DPU_ROUNDTRIP]
    assert large[OffloadPath.DPU_ROUNDTRIP] < large[OffloadPath.HOST_ONLY]

    # The measured crossover brackets the closed-form prediction.
    env = Environment()
    engine = HostOffloadEngine(
        HostNode(env, HOST_XEON), make_device(env, "bf2"), PCIE_GEN4_X16
    )
    predicted = engine.predicted_crossover_bytes("C-Engine_DEFLATE")
    assert SIZES[0] < predicted < SIZES[-1]
