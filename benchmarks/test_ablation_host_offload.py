"""Ablation: host-offload placement crossover (paper §VI).

"It is crucial to assess the overhead associated with data movement
between the host and DPU" — this bench sweeps message sizes and reports
where compressing on the host loses to shipping data to the DPU's
C-Engine (round-trip and inline variants).
"""

from repro.datasets import get_dataset
from repro.dpu import make_device
from repro.host import HOST_XEON, PCIE_GEN4_X16, HostNode, HostOffloadEngine, OffloadPath
from repro.sim import Environment

# The closed-form crossover sits near ~19 KB (fixed PCIe+job overheads
# over the per-byte host-vs-engine gain); sweep well past both sides.
SIZES = [4e3, 64e3, 1e6, 16e6, 48.85e6]


def _sweep():
    env = Environment()
    engine = HostOffloadEngine(
        HostNode(env, HOST_XEON), make_device(env, "bf2"), PCIE_GEN4_X16
    )
    env.run(until=env.process(engine.init()))
    payload = get_dataset("silesia/mozilla").generate(48 * 1024)

    rows = []
    for nominal in SIZES:
        times = {}
        for path in OffloadPath:
            proc = env.process(
                engine.compress(payload, "C-Engine_DEFLATE", path, nominal)
            )
            result = env.run(until=proc)
            times[path] = result.sim_seconds
        rows.append((nominal, times))
    return rows


def test_host_offload_crossover(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    by_size = dict(rows)

    # Inline (one PCIe crossing) always beats round-trip (two).
    for times in by_size.values():
        assert times[OffloadPath.DPU_INLINE] < times[OffloadPath.DPU_ROUNDTRIP]

    # Small messages: host CPU wins; large: the C-Engine wins even
    # after paying PCIe both ways.
    small = by_size[SIZES[0]]
    large = by_size[SIZES[-1]]
    assert small[OffloadPath.HOST_ONLY] < small[OffloadPath.DPU_ROUNDTRIP]
    assert large[OffloadPath.DPU_ROUNDTRIP] < large[OffloadPath.HOST_ONLY]

    # The measured crossover brackets the closed-form prediction.
    env = Environment()
    engine = HostOffloadEngine(
        HostNode(env, HOST_XEON), make_device(env, "bf2"), PCIE_GEN4_X16
    )
    predicted = engine.predicted_crossover_bytes("C-Engine_DEFLATE")
    assert SIZES[0] < predicted < SIZES[-1]


def _zlib_roundtrips():
    """HOST_ONLY zlib compress+decompress breakdowns across the sweep."""
    from repro.host.offload import PHASE_HEADER

    env = Environment()
    engine = HostOffloadEngine(
        HostNode(env, HOST_XEON), make_device(env, "bf2"), PCIE_GEN4_X16
    )
    env.run(until=env.process(engine.init()))
    payload = get_dataset("silesia/mozilla").generate(48 * 1024)

    rows = []
    for nominal in SIZES:
        proc = env.process(
            engine.compress(payload, "SoC_zlib", OffloadPath.HOST_ONLY, nominal)
        )
        comp = env.run(until=proc)
        proc = env.process(
            engine.decompress(comp.message, OffloadPath.HOST_ONLY, nominal)
        )
        _, dec_breakdown = env.run(until=proc)
        rows.append(
            (
                nominal,
                comp.breakdown.get(PHASE_HEADER),
                dec_breakdown.get(PHASE_HEADER),
                comp.sim_seconds,
            )
        )
    return rows


def test_host_zlib_checksum_symmetry(benchmark):
    """The zlib adler32/header charge is visible, direction-symmetric,
    and linear in the nominal size at every grid point."""
    rows = benchmark.pedantic(_zlib_roundtrips, rounds=1, iterations=1)
    for nominal, comp_header, dec_header, total in rows:
        assert comp_header > 0
        assert abs(comp_header - dec_header) <= 1e-15 * max(comp_header, 1.0)
        assert comp_header < total  # a component, never the whole bill
    # Linear scaling with nominal bytes across the sweep.
    base_nominal, base_header = rows[0][0], rows[0][1]
    for nominal, comp_header, _, _ in rows[1:]:
        expected = base_header * (nominal / base_nominal)
        assert abs(comp_header - expected) <= 1e-9 * expected
