"""Regenerate Fig. 8 and assert the calibrated headline factors.

Paper claims re-checked (all from §V-C1):
* 101.8x / 11.2x — BF2 C-Engine vs SoC, DEFLATE at 5.1 MB;
* 84.6x / 20x — BF2 C-Engine vs SoC, zlib at 48.85 MB;
* 1.78x / 1.28x — BF3 vs BF2 C-Engine DEFLATE decompression.
"""

import pytest
from conftest import run_once

from repro.bench.harness import run_experiment


def test_fig8(benchmark, experiment_kwargs):
    result = run_once(benchmark, run_experiment, "fig8", **experiment_kwargs)
    h = result.headlines

    assert h["bf2_deflate_xml_compress_speedup (paper 101.8)"] == pytest.approx(
        101.8, rel=0.05
    )
    assert h["bf2_deflate_xml_decompress_speedup (paper 11.2)"] == pytest.approx(
        11.2, rel=0.05
    )
    assert h["bf2_zlib_mozilla_compress_speedup (paper 84.6)"] == pytest.approx(
        84.6, rel=0.05
    )
    assert h["bf2_zlib_mozilla_decompress_speedup (paper 20)"] == pytest.approx(
        20.0, rel=0.05
    )
    assert h["bf3_vs_bf2_cengine_deflate_decomp_5MB (paper 1.78)"] == pytest.approx(
        1.78, rel=0.05
    )
    assert h["bf3_vs_bf2_cengine_deflate_decomp_49MB (paper 1.28)"] == pytest.approx(
        1.28, rel=0.05
    )

    # Insight 3: the C-Engine (where native) always beats the SoC.
    for row in result.rows:
        if row["device"] == "bf2" and row["design"] == "C-Engine_DEFLATE":
            soc = next(
                r
                for r in result.rows
                if r["device"] == "bf2"
                and r["design"] == "SoC_DEFLATE"
                and r["dataset"] == row["dataset"]
            )
            assert row["compress_s"] < soc["compress_s"]
            assert row["decompress_s"] < soc["decompress_s"]
